//! Machine-level property tests: masked-execution semantics, scheduler
//! determinism, fast-forward correctness, and instruction-semantics
//! equivalence against host arithmetic.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use asc_isa::{AluOp, CmpOp, Width, Word};

use crate::config::MachineConfig;
use crate::machine::Machine;

fn cfg8() -> MachineConfig {
    let mut c = MachineConfig::new(8).with_width(Width::W8);
    c.lmem_words = 16;
    c
}

proptest! {
    /// Masked execution equals run-everywhere + merge: running an ALU op
    /// under mask `pf1` leaves inactive PEs' destination untouched and
    /// matches the unmasked result in active PEs.
    #[test]
    fn masked_alu_is_a_merge(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ops = [AluOp::Add, AluOp::Sub, AluOp::Xor, AluOp::Min, AluOp::Srl];
        let op = ops[rng.random_range(0..ops.len())];
        let threshold = rng.random_range(0..8i64);
        let src = format!(
            "pidx   p1
             pli    p2, 11
             pclti  pf1, p1, {threshold}
             p{op}i p3, p1, 3 ?pf1
             halt"
        );
        let (masked, _) = crate::run_source(cfg8(), &src, 100_000).unwrap();
        let unmasked_src = format!(
            "pidx   p1
             pli    p2, 11
             p{op}i p3, p1, 3
             halt"
        );
        let (unmasked, _) = crate::run_source(cfg8(), &unmasked_src, 100_000).unwrap();
        for pe in 0..8 {
            let got = masked.array().gpr(pe, 0, 3);
            if (pe as i64) < threshold {
                prop_assert_eq!(got, unmasked.array().gpr(pe, 0, 3), "active PE {}", pe);
            } else {
                prop_assert_eq!(got, Word::ZERO, "inactive PE {} must be untouched", pe);
            }
        }
    }

    /// Scalar ALU/compare instructions compute exactly what the host
    /// arithmetic says, for every op and random operands.
    #[test]
    fn scalar_semantics_match_host(a in -128i64..128, b in -128i64..128) {
        let w = Width::W8;
        for &op in AluOp::ALL {
            let src = format!(
                "li  s1, {a}
                 li  s2, {b}
                 {op} s3, s1, s2
                 halt"
            );
            let (m, _) = crate::run_source(cfg8(), &src, 100_000).unwrap();
            let expect = op.apply(Word::from_i64(a, w), Word::from_i64(b, w), w);
            prop_assert_eq!(m.sreg(0, 3), expect, "{} {} {}", op, a, b);
        }
        for &op in CmpOp::ALL {
            let src = format!(
                "li  s1, {a}
                 li  s2, {b}
                 c{op} f1, s1, s2
                 halt"
            );
            let (m, _) = crate::run_source(cfg8(), &src, 100_000).unwrap();
            let expect = op.apply(Word::from_i64(a, w), Word::from_i64(b, w), w);
            prop_assert_eq!(m.sflag(0, 1), expect, "c{} {} {}", op, a, b);
        }
    }

    /// Reductions equal host folds over the active set, for random values
    /// and random masks.
    #[test]
    fn reductions_match_host_folds(
        vals in proptest::collection::vec(-100i64..100, 8),
        threshold in 0i64..9,
    ) {
        let w = Width::W8;
        let src = format!(
            "pidx  p1
             plw   p2, 0(p0)
             pclti pf1, p1, {threshold}
             rsum  s1, p2 ?pf1
             rmax  s2, p2 ?pf1
             rmin  s3, p2 ?pf1
             rcount s4, pf1
             halt"
        );
        let program = asc_asm::assemble(&src).unwrap();
        let mut m = Machine::with_program(cfg8(), &program).unwrap();
        let words: Vec<Word> = vals.iter().map(|&v| Word::from_i64(v, w)).collect();
        m.array_mut().scatter_column(0, &words).unwrap();
        m.run(100_000).unwrap();

        let active: Vec<i64> = vals.iter().take(threshold as usize).copied().collect();
        let sum: i64 = active.iter().sum::<i64>().clamp(w.smin(), w.smax());
        // the machine's saturating tree sum equals the clamped exact sum
        // when no intermediate node overflows; with |v| < 100 and <= 8
        // values the max partial magnitude is 800 -- may exceed 127, so
        // only check when the exact partial sums stay in range
        let abs: i64 = active.iter().map(|v| v.abs()).sum();
        if abs <= w.smax() {
            prop_assert_eq!(m.sreg(0, 1).to_i64(w), sum);
        }
        let max = active.iter().copied().max().unwrap_or(w.smin());
        let min = active.iter().copied().min().unwrap_or(w.smax());
        prop_assert_eq!(m.sreg(0, 2).to_i64(w), max);
        prop_assert_eq!(m.sreg(0, 3).to_i64(w), min);
        prop_assert_eq!(m.sreg(0, 4).to_u32() as usize, active.len());
    }

    /// `pshift` by d then by -d over-writes with zeros only at the edges;
    /// the middle returns intact (shift network round trip).
    #[test]
    fn shift_round_trip(d in 1i64..7) {
        let src = format!(
            "pidx   p1
             pshift p2, p1, {d}
             pshift p3, p2, -{d}
             halt"
        );
        let (m, _) = crate::run_source(cfg8(), &src, 100_000).unwrap();
        for pe in 0..8i64 {
            let expect = if pe + d < 8 { pe as u32 } else { 0 };
            prop_assert_eq!(m.array().gpr(pe as usize, 0, 3).to_u32(), expect);
        }
    }
}

/// `Instr::writes()` drives the scoreboard: if it under-reports, hazard
/// detection is silently wrong. Check against the executor: after one
/// random instruction, every changed register must appear in `writes()`.
#[test]
fn writes_set_bounds_executor_effects() {
    use crate::emulator::Emulator;
    use asc_isa::gen::random_straightline_instr;
    use asc_isa::{Instr, Operand, RegClass};

    let mut rng = StdRng::seed_from_u64(0x5EED);
    // lmem large enough that any 8-bit base register + small offset is in
    // range (random register state feeds the address calculation)
    let mut cfg = cfg8();
    cfg.lmem_words = 512;
    for trial in 0..400 {
        let mut i = random_straightline_instr(&mut rng);
        match &mut i {
            Instr::Lw { off, .. } | Instr::Sw { off, .. } => *off = off.rem_euclid(16),
            Instr::Plw { off, .. } | Instr::Psw { off, .. } => *off = off.rem_euclid(15),
            _ => {}
        }
        let words = [asc_isa::encode(&i), asc_isa::encode(&Instr::Halt)];
        let mut emu = Emulator::new(cfg);
        emu.machine_mut().load_words(&words).unwrap();
        // randomize initial state so effects are visible
        for r in 1..16 {
            emu.machine_mut().set_sreg(0, r, Word::new(rng.random::<u32>() & 0xff, Width::W8));
        }
        for pe in 0..8 {
            for r in 1..16 {
                emu.machine_mut().array_mut().set_gpr(
                    pe,
                    0,
                    r,
                    Word::new(rng.random::<u32>() & 0xff, Width::W8),
                );
            }
            for f in 0..8 {
                emu.machine_mut().array_mut().set_flag(pe, 0, f, rng.random());
            }
        }

        // snapshot
        let snap_s: Vec<Word> = (0..16).map(|r| emu.machine().sreg(0, r)).collect();
        let snap_f: Vec<bool> = (0..8).map(|f| emu.machine().sflag(0, f)).collect();
        let snap_p: Vec<Vec<Word>> =
            (0..8).map(|pe| (0..16).map(|r| emu.array().gpr(pe, 0, r)).collect()).collect();
        let snap_pf: Vec<Vec<bool>> =
            (0..8).map(|pe| (0..8).map(|f| emu.array().flag(pe, 0, f)).collect()).collect();

        emu.step().unwrap();

        let writes = i.writes();
        let declared = |op: Operand| writes.contains(&op);
        for r in 0..16u8 {
            if emu.machine().sreg(0, r as usize) != snap_s[r as usize] {
                assert!(
                    declared(Operand { class: RegClass::SGpr, index: r }),
                    "trial {trial}: {i:?} changed s{r} without declaring it"
                );
            }
        }
        for f in 0..8u8 {
            if emu.machine().sflag(0, f as usize) != snap_f[f as usize] {
                assert!(
                    declared(Operand { class: RegClass::SFlag, index: f }),
                    "trial {trial}: {i:?} changed f{f} without declaring it"
                );
            }
        }
        for pe in 0..8 {
            for r in 0..16u8 {
                if emu.array().gpr(pe, 0, r as usize) != snap_p[pe][r as usize] {
                    assert!(
                        declared(Operand { class: RegClass::PGpr, index: r }),
                        "trial {trial}: {i:?} changed PE{pe} p{r} without declaring it"
                    );
                }
            }
            for f in 0..8u8 {
                if emu.array().flag(pe, 0, f as usize) != snap_pf[pe][f as usize] {
                    assert!(
                        declared(Operand { class: RegClass::PFlag, index: f }),
                        "trial {trial}: {i:?} changed PE{pe} pf{f} without declaring it"
                    );
                }
            }
        }
    }
}

/// The fast-forward optimization (skipping long stalls in one step) must
/// not change any cycle count: compare against a machine stepped with the
/// same programs at different PE counts, where the final cycle counts obey
/// the closed-form b+r model.
#[test]
fn fast_forward_matches_closed_form() {
    for p in [4usize, 16, 64, 1024] {
        let mut cfg = MachineConfig::new(p).single_threaded();
        cfg.lmem_words = 8;
        let t = cfg.timing();
        let (_, stats) = crate::run_source(
            cfg,
            "rmax s1, p2
             sub  s3, s1, s1
             halt",
            1_000_000,
        )
        .unwrap();
        // issue cycles: rmax@0, sub@(b+r+1), halt@(b+r+2); halt retires at
        // +3, so total = b+r+2+3+1
        assert_eq!(stats.cycles, t.b + t.r + 6, "p = {p}");
    }
}

/// Compare every architecturally visible bit of two machines that ran the
/// same program: registers, flags, local and scalar memory, cycle count,
/// and the full statistics report.
fn assert_machines_identical(a: &Machine, b: &Machine, label: &str) {
    assert_eq!(a.cycle(), b.cycle(), "{label}: cycle count");
    assert_eq!(a.stats(), b.stats(), "{label}: statistics");
    let p = a.config().num_pes;
    for t in 0..a.config().threads {
        for r in 0..asc_isa::NUM_GPRS {
            assert_eq!(a.sreg(t, r), b.sreg(t, r), "{label}: t{t} s{r}");
        }
        for f in 0..asc_isa::NUM_FLAGS {
            assert_eq!(a.sflag(t, f), b.sflag(t, f), "{label}: t{t} f{f}");
        }
        for pe in 0..p {
            for r in 0..asc_isa::NUM_GPRS {
                assert_eq!(
                    a.array().gpr(pe, t, r),
                    b.array().gpr(pe, t, r),
                    "{label}: t{t} PE{pe} p{r}"
                );
            }
            for f in 0..asc_isa::NUM_FLAGS {
                assert_eq!(
                    a.array().flag(pe, t, f),
                    b.array().flag(pe, t, f),
                    "{label}: t{t} PE{pe} pf{f}"
                );
            }
        }
    }
    for pe in 0..p {
        for addr in 0..a.config().lmem_words as u32 {
            assert_eq!(
                a.array().lmem_word(pe, addr).unwrap(),
                b.array().lmem_word(pe, addr).unwrap(),
                "{label}: PE{pe} lmem[{addr}]"
            );
        }
    }
    for addr in 0..a.config().smem_words as u32 {
        assert_eq!(a.smem().read(addr), b.smem().read(addr), "{label}: smem[{addr}]");
    }
}

/// The saturating tree sum is order-sensitive, so the segmented reducer
/// must reproduce the canonical flat association order exactly — pinned
/// here across a segment boundary. 130 PEs span 3 tiles; values 100+100
/// saturate to 127 inside the first segment before the -100 in the next
/// tile and the 77 in the ragged tail are combined: ((100⊕100)⊕-100)⊕77
/// = (127-100)+77 = 104, whereas the exact sum 177 would clamp to 127.
#[test]
fn saturating_sum_order_is_pinned_across_segment_boundaries() {
    let w = Width::W8;
    let mut cfg = MachineConfig::new(130).with_width(w);
    cfg.lmem_words = 8;
    let program = asc_asm::assemble(
        "plw  p2, 0(p0)
         rsum s1, p2
         halt",
    )
    .unwrap();
    let mut vals = vec![Word::ZERO; 130];
    vals[62] = Word::from_i64(100, w);
    vals[63] = Word::from_i64(100, w);
    vals[64] = Word::from_i64(-100, w);
    vals[128] = Word::from_i64(77, w);
    let mut machines: Vec<Machine> = [1usize, 2, 3]
        .iter()
        .map(|&req| {
            let mut m = Machine::with_program(cfg.with_segments(req), &program).unwrap();
            m.array_mut().scatter_column(0, &vals).unwrap();
            m.run(100_000).unwrap();
            assert_eq!(m.sreg(0, 1).to_i64(w), 104, "{req} segments");
            m
        })
        .collect();
    let mono = machines.remove(0);
    for (m, req) in machines.iter().zip([2, 3]) {
        assert_machines_identical(&mono, m, &format!("{req} segments"));
    }
}

proptest! {
    /// Block fusion and SIMD dispatch are architecturally invisible: a
    /// random straight-line program leaves bit-identical machine state,
    /// cycle counts, and statistics across every (fusion × SIMD)
    /// combination — compiled SIMD kernels, compiled scalar kernels, and
    /// the instruction-major executor at both tiers — in the serial
    /// execution regime and in the rayon-over-tiles regime (forced via
    /// `parallel_threshold`, with a short tail tile).
    #[test]
    fn fusion_is_bit_identical(seed in any::<u64>(), force_parallel in any::<bool>()) {
        use asc_isa::gen::random_straightline_instr;
        use asc_isa::Instr;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut words = Vec::new();
        for _ in 0..60 {
            let mut i = random_straightline_instr(&mut rng);
            // W8 base registers hold at most 255; a non-negative offset
            // below 256 keeps every access within the 512-word local
            // memory (and 128 within scalar memory), so runs never fault.
            match &mut i {
                Instr::Lw { off, .. } | Instr::Sw { off, .. } => *off = off.rem_euclid(128),
                Instr::Plw { off, .. } | Instr::Psw { off, .. } => *off = off.rem_euclid(127),
                _ => {}
            }
            words.push(asc_isa::encode(&i));
        }
        words.push(asc_isa::encode(&Instr::Halt));

        let mut cfg = MachineConfig::new(if force_parallel { 100 } else { 8 })
            .with_width(Width::W8);
        if force_parallel {
            cfg.parallel_threshold = 1;
        }
        let run = |cfg: MachineConfig| {
            let mut m = Machine::new(cfg);
            m.load_words(&words).unwrap();
            m.run(10_000_000).unwrap();
            m
        };
        let fused = run(cfg);
        let unfused = run(cfg.without_fusion());
        let fused_scalar = run(cfg.without_simd());
        let unfused_scalar = run(cfg.without_fusion().without_simd());

        assert_machines_identical(&fused, &unfused, &format!("seed {seed} fused vs unfused"));
        assert_machines_identical(
            &fused,
            &fused_scalar,
            &format!("seed {seed} fused simd vs fused scalar"),
        );
        assert_machines_identical(
            &fused,
            &unfused_scalar,
            &format!("seed {seed} fused simd vs unfused scalar"),
        );
        prop_assert_eq!(unfused.fusion_stats().instrs_fused, 0);
        prop_assert_eq!(fused_scalar.fusion_stats().simd_ops, 0);
    }

    /// Core-affine segmentation is architecturally invisible: the same
    /// random straight-line program leaves bit-identical machine state,
    /// cycle counts, statistics and cycle-attribution profiles at every
    /// requested segment count — including counts that do not divide the
    /// tile total, so the last segment is ragged.
    #[test]
    fn segmented_execution_is_bit_identical(seed in any::<u64>(), req in 0usize..=7) {
        use asc_isa::gen::random_straightline_instr;
        use asc_isa::Instr;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut words = Vec::new();
        for _ in 0..60 {
            let mut i = random_straightline_instr(&mut rng);
            // same bounds argument as `fusion_is_bit_identical`
            match &mut i {
                Instr::Lw { off, .. } | Instr::Sw { off, .. } => *off = off.rem_euclid(128),
                Instr::Plw { off, .. } | Instr::Psw { off, .. } => *off = off.rem_euclid(127),
                _ => {}
            }
            words.push(asc_isa::encode(&i));
        }
        words.push(asc_isa::encode(&Instr::Halt));

        // 320 PEs = 5 tiles: the requested counts resolve to 1, 2, 3 or 5
        // segments, ragged whenever the split is uneven.
        let cfg = MachineConfig::new(320).with_width(Width::W8);
        let run = |cfg: MachineConfig| {
            let mut m = Machine::new(cfg);
            m.attach_profiler();
            m.load_words(&words).unwrap();
            m.run(10_000_000).unwrap();
            m
        };
        let mut mono = run(cfg.with_segments(1));
        let mut seg = run(cfg.with_segments(req));
        assert_machines_identical(&mono, &seg, &format!("seed {seed} segments {req}"));
        let cycles = seg.stats().cycles;
        let seg_profile = seg.take_profile().unwrap();
        prop_assert_eq!(seg_profile.attributed_cycles(), cycles,
            "segmented profile conserves cycles (seed {}, segments {})", seed, req);
        prop_assert!(seg_profile == mono.take_profile().unwrap(),
            "profiles bit-identical across segment counts (seed {}, segments {})", seed, req);
    }

    /// The cycle-attribution profiler conserves cycles exactly on random
    /// programs (1–8 threads, straight-line bodies behind spawn/join
    /// scaffolding), and block fusion is invisible to it: the fused and
    /// unfused profiles are bit-for-bit identical — ghost-issued fused
    /// instructions attribute exactly like their unfused execution.
    #[test]
    fn profiles_conserve_and_fusion_is_invisible(seed in any::<u64>(), threads in 1usize..=8) {
        use asc_isa::gen::random_straightline_instr;
        use asc_isa::Instr;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut body = String::new();
        for _ in 0..24 {
            let mut i = random_straightline_instr(&mut rng);
            // same bounds argument as `fusion_is_bit_identical`: W8 bases
            // stay under 256, so these offsets keep every access in range
            match &mut i {
                Instr::Lw { off, .. } | Instr::Sw { off, .. } => *off = off.rem_euclid(128),
                Instr::Plw { off, .. } | Instr::Psw { off, .. } => *off = off.rem_euclid(127),
                _ => {}
            }
            body.push_str("        ");
            body.push_str(&asc_asm::disassemble(&i));
            body.push('\n');
        }
        let src = if threads == 1 {
            format!("{body}        halt\n")
        } else {
            // spawn `threads - 1` workers into distinct handle registers
            // (registers, not shared memory, so random worker stores
            // cannot clobber the join handles), each running the body
            let mut main = String::from("        li   s1, worker\n");
            for w in 0..threads - 1 {
                main.push_str(&format!("        tspawn s{}, s1\n", w + 2));
            }
            for w in 0..threads - 1 {
                main.push_str(&format!("        tjoin s{}\n", w + 2));
            }
            main.push_str("        halt\nworker:\n");
            format!("{main}{body}        texit\n")
        };
        let program = asc_asm::assemble(&src).unwrap();
        let cfg = MachineConfig::new(8).with_width(Width::W8).with_threads(8);

        let run = |fusion: bool| {
            let cfg = if fusion { cfg } else { cfg.without_fusion() };
            let mut m = Machine::with_program(cfg, &program).unwrap();
            m.attach_profiler();
            m.run(10_000_000).unwrap();
            let cycles = m.stats().cycles;
            (m.take_profile().unwrap(), cycles)
        };
        let (fused, fused_cycles) = run(true);
        let (unfused, unfused_cycles) = run(false);

        prop_assert_eq!(fused.attributed_cycles(), fused_cycles,
            "fused conservation (seed {}, {} threads)", seed, threads);
        prop_assert_eq!(unfused.attributed_cycles(), unfused_cycles,
            "unfused conservation (seed {}, {} threads)", seed, threads);
        prop_assert_eq!(fused_cycles, unfused_cycles, "cycle counts agree");
        prop_assert!(fused == unfused,
            "profiles bit-identical (seed {}, {} threads)", seed, threads);
    }
}

proptest! {
    /// Race-free multithreaded programs are schedule-invariant: random
    /// straight-line worker bodies whose memory accesses are rewritten
    /// into disjoint per-worker windows (scalar and PE-local memory both
    /// partition; registers and flags are per-context planes already)
    /// must reach the *same architectural state* under every perturbed
    /// legal schedule, fine- and coarse-grain, and the cycle-attribution
    /// profiler must conserve cycles under perturbation too. Seed 0 is
    /// the unperturbed baseline. Cycle counts are deliberately excluded:
    /// with a single issue port, cycle-identical would force
    /// interleaving-identical, and the whole point is that the
    /// interleaving varies (docs/static-analysis.md, "Why architectural
    /// state and not cycles").
    #[test]
    fn race_free_random_programs_are_schedule_invariant(
        seed in any::<u64>(),
        threads in 2usize..=8,
    ) {
        use asc_isa::gen::random_straightline_instr;
        use asc_isa::reg::{PReg, SReg};
        use asc_isa::Instr;
        let mut rng = StdRng::seed_from_u64(seed);
        let workers = threads - 1;
        let mut src = String::new();
        // spawn each worker at its own entry, into its own handle register
        for w in 0..workers {
            src.push_str(&format!("        li     s1, worker{w}\n"));
            src.push_str(&format!("        tspawn s{}, s1\n", w + 2));
        }
        for w in 0..workers {
            src.push_str(&format!("        tjoin  s{}\n", w + 2));
        }
        src.push_str("        halt\n");
        for w in 0..workers {
            src.push_str(&format!("worker{w}:\n"));
            for _ in 0..16 {
                let mut i = random_straightline_instr(&mut rng);
                // Rewrite every memory access into the worker's private
                // 16-word window off the hardwired-zero base register, so
                // no two threads ever touch the same word. `tid` is the
                // one straight-line instruction whose *result* is
                // schedule-dependent (context ids are allocation-order
                // dependent) — pin it to the worker number instead.
                let window = |off: i64| (w as i64 * 16 + off.rem_euclid(16)) as i16;
                match &mut i {
                    Instr::Lw { base, off, .. } | Instr::Sw { base, off, .. } => {
                        *base = SReg::R0;
                        *off = window(*off as i64);
                    }
                    Instr::Plw { base, off, .. } | Instr::Psw { base, off, .. } => {
                        *base = PReg::R0;
                        *off = window(*off as i64) as i8;
                    }
                    Instr::TId { rd } => i = Instr::Li { rd: *rd, imm: w as i16 },
                    _ => {}
                }
                src.push_str("        ");
                src.push_str(&asc_asm::disassemble(&i));
                src.push('\n');
            }
            src.push_str("        texit\n");
        }
        let program = asc_asm::assemble(&src).unwrap();
        let cfg = MachineConfig::new(8).with_width(Width::W8).with_threads(8);

        for grain in ["fine", "coarse"] {
            let cfg = if grain == "coarse" { cfg.coarse_grain(3) } else { cfg };
            let digest = |sched_seed: u64| {
                let mut m =
                    Machine::with_program(cfg.with_sched_seed(sched_seed), &program).unwrap();
                m.attach_profiler();
                m.run(10_000_000).unwrap();
                let cycles = m.stats().cycles;
                prop_assert_eq!(
                    m.take_profile().unwrap().attributed_cycles(), cycles,
                    "profiler conserves cycles ({} grain, seed {}, sched seed {})",
                    grain, seed, sched_seed
                );
                Ok(m.arch_digest())
            };
            let baseline = digest(0)?;
            for sched_seed in 1..=4u64 {
                prop_assert_eq!(
                    digest(sched_seed)?, baseline,
                    "race-free program diverged ({} grain, seed {}, sched seed {}, {} threads)",
                    grain, seed, sched_seed, threads
                );
            }
        }
    }
}
