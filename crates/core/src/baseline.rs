//! Baseline processor models the paper compares against (implicitly or in
//! the related-work section):
//!
//! * [`NonPipelinedModel`] — the original ASC Processor line \[5,6\]: no
//!   broadcast/reduction pipelining, no multithreading. Every instruction
//!   completes before the next begins; max/min reductions run the
//!   bit-serial Falkoff algorithm (one bit per cycle); the clock is slower
//!   and *degrades with PE count* (wire delay — see `asc-fpga`'s clock
//!   model).
//! * The pipelined-but-single-threaded machine is just
//!   `MachineConfig::single_threaded()` — it pays the full b+r stall on
//!   every reduction dependency.
//! * Coarse-grain multithreading is `MachineConfig::coarse_grain(penalty)`.

use asc_asm::Program;
use asc_isa::{Instr, InstrClass, ReduceOp, Width};
use asc_pe::{DividerConfig, MultiplierKind};

use crate::config::MachineConfig;
use crate::emulator::Emulator;
use crate::error::RunError;

/// Cycle-cost model of the non-pipelined scalable ASC Processor.
#[derive(Debug, Clone, Copy)]
pub struct NonPipelinedModel {
    /// Datapath width (Falkoff max/min takes one cycle per bit).
    pub width: Width,
    /// Multiplier cost per operation (sequential shift-add).
    pub mul_cycles: u64,
    /// Divider cost per operation.
    pub div_cycles: u64,
}

impl NonPipelinedModel {
    /// Model for a machine of the given width.
    pub fn new(width: Width) -> NonPipelinedModel {
        NonPipelinedModel {
            width,
            mul_cycles: width.bits() as u64,
            div_cycles: width.bits() as u64 + 2,
        }
    }

    /// Cycles the non-pipelined processor spends on one instruction. The
    /// broadcast is combinational (folded into the — slow — clock), so
    /// scalar and parallel instructions take one cycle; bit-serial
    /// reductions take one cycle per bit.
    pub fn cycles_for(&self, i: &Instr) -> u64 {
        if i.uses_multiplier() {
            return self.mul_cycles;
        }
        if i.uses_divider() {
            return self.div_cycles;
        }
        match i {
            Instr::Reduce { op, .. } => match op {
                // Falkoff bit-serial max/min: one bit per cycle
                ReduceOp::Max | ReduceOp::Min | ReduceOp::MaxU | ReduceOp::MinU => {
                    self.width.bits() as u64
                }
                // bit-serial sum likewise
                ReduceOp::Sum => self.width.bits() as u64,
                // combinational OR/AND tree within the (long) cycle
                ReduceOp::And | ReduceOp::Or => 1,
            },
            // responder detection / resolution / count: combinational
            _ => match i.class() {
                InstrClass::Scalar | InstrClass::Parallel | InstrClass::Reduction => 1,
            },
        }
    }
}

/// Outcome of a non-pipelined baseline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineRun {
    /// Instructions executed.
    pub instructions: u64,
    /// Cycles consumed under the cost model.
    pub cycles: u64,
}

/// Run `program` on the non-pipelined baseline: functional emulation with
/// the per-instruction cost model. The machine is forced single-threaded
/// (the original ASC Processors had one instruction stream).
pub fn run_nonpipelined(
    cfg: MachineConfig,
    program: &Program,
    max_steps: u64,
) -> Result<BaselineRun, RunError> {
    let cfg = MachineConfig {
        threads: 1,
        // the old processors had sequential mul/div when present at all
        multiplier: match cfg.multiplier {
            MultiplierKind::None => MultiplierKind::None,
            _ => MultiplierKind::default_sequential(cfg.width.bits()),
        },
        divider: match cfg.divider {
            DividerConfig::None => DividerConfig::None,
            _ => DividerConfig::default_sequential(cfg.width.bits()),
        },
        ..cfg
    };
    let model = NonPipelinedModel::new(cfg.width);
    let mut emu = Emulator::with_program(cfg, program)?;
    let cycles = emu.run_costed(max_steps, |i| model.cycles_for(i))?;
    Ok(BaselineRun { instructions: emu.executed(), cycles })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model() {
        let m = NonPipelinedModel::new(Width::W16);
        let rmax = asc_asm::assemble("rmax s1, p1\n").unwrap().instrs[0];
        assert_eq!(m.cycles_for(&rmax), 16);
        let ror = asc_asm::assemble("ror s1, p1\n").unwrap().instrs[0];
        assert_eq!(m.cycles_for(&ror), 1);
        let padd = asc_asm::assemble("padd p1, p2, p3\n").unwrap().instrs[0];
        assert_eq!(m.cycles_for(&padd), 1);
        let mul = asc_asm::assemble("mul s1, s2, s3\n").unwrap().instrs[0];
        assert_eq!(m.cycles_for(&mul), 16);
    }

    #[test]
    fn runs_a_program() {
        let prog = asc_asm::assemble(
            "pidx p1\n\
             rmax s1, p1\n\
             rsum s2, p1\n\
             halt\n",
        )
        .unwrap();
        let out = run_nonpipelined(MachineConfig::new(8), &prog, 10_000).unwrap();
        assert_eq!(out.instructions, 4);
        // pidx 1 + rmax 16 + rsum 16 + halt 1
        assert_eq!(out.cycles, 34);
    }
}
