//! Machine configuration.

use asc_isa::Width;
use asc_network::NetworkConfig;
use asc_pe::ArrayConfig;
// Re-exported: these are the types of `MachineConfig`'s public
// `multiplier`/`divider` fields, so consumers (e.g. `asc-verify`) can name
// them without depending on `asc-pe` directly.
pub use asc_pe::{DividerConfig, MultiplierKind};

use crate::timing::Timing;

/// Parse a non-negative integer from an environment variable, treating
/// unset, empty and malformed values as "not overridden" (mirrors the
/// `MTASC_NO_SIMD` convention of ignoring empty strings).
fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().filter(|v| !v.is_empty()).and_then(|v| v.parse().ok())
}

/// Scheduler policy of the decode/issue unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Fine-grain multithreading with rotating thread priority — the
    /// paper's design. Any ready thread may issue every cycle.
    FineGrain,
    /// Coarse-grain multithreading: the current thread runs until it would
    /// stall for more than a couple of cycles; switching threads flushes
    /// the front end and costs `switch_penalty` cycles. Implemented as the
    /// baseline the paper argues against for short, frequent reduction
    /// stalls.
    CoarseGrain {
        /// Cycles lost on every thread switch.
        switch_penalty: u64,
    },
}

/// How instruction fetch is modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchModel {
    /// Per-thread buffers are always full (the branch-redirect bubble
    /// stands in for refill). The default: fast, and accurate whenever
    /// fetch bandwidth (one instruction per cycle) matches issue
    /// bandwidth.
    Ideal,
    /// Explicit model of Figure 3's fetch unit: one instruction fetched
    /// per cycle into the per-thread instruction buffers (round-robin
    /// over threads with space), issue only from a non-empty buffer,
    /// buffers flushed on taken branches.
    Finite {
        /// Instruction-buffer depth per thread.
        buffer_depth: usize,
    },
}

/// Full configuration of a simulated Multithreaded ASC Processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of processing elements.
    pub num_pes: usize,
    /// Datapath width (scalar unit and PEs).
    pub width: Width,
    /// Hardware thread contexts.
    pub threads: usize,
    /// Arity of the broadcast tree.
    pub broadcast_arity: usize,
    /// PE local memory size in words.
    pub lmem_words: usize,
    /// Scalar data memory size in words (shared by all threads).
    pub smem_words: usize,
    /// Instruction memory size in words.
    pub imem_words: usize,
    /// Multiplier implementation.
    pub multiplier: MultiplierKind,
    /// Divider implementation.
    pub divider: DividerConfig,
    /// Scheduler policy.
    pub sched: SchedPolicy,
    /// Forwarding paths enabled (disable only for the ablation study).
    pub forwarding: bool,
    /// Instruction-fetch model.
    pub fetch: FetchModel,
    /// PE-loop Rayon threshold (see [`ArrayConfig::parallel_threshold`]).
    pub parallel_threshold: usize,
    /// Execute fusible parallel basic blocks tile-by-tile (the block
    /// fusion engine). Purely an execution strategy: cycle counts, stats,
    /// and architectural results are bit-identical either way. Disable
    /// (`mtasc run --no-fuse`) only to cross-check or to time the
    /// instruction-major executor.
    pub fusion: bool,
    /// Use the host's vector units (AVX2/AVX-512, probed once at machine
    /// construction) for dense plane sweeps and compiled block kernels.
    /// Purely an execution strategy — results, cycle counts and stats are
    /// bit-identical at every tier. Disable (`mtasc run --no-simd`, or
    /// `MTASC_NO_SIMD=1`) to cross-check or to time the scalar loops.
    pub simd: bool,
    /// Requested segment count for the core-affine sharding of the PE
    /// array (`0` = automatic, one segment per 4096 lanes; `1` = the
    /// monolithic flat layout; overridable with `MTASC_SEGMENTS`). Purely
    /// an execution strategy — results, cycle counts, stats and profiles
    /// are bit-identical at every count; see [`asc_pe::SegmentGeometry`].
    pub segments: usize,
    /// Schedule-perturbation seed (`0` = off, the exact baseline
    /// schedule; overridable with `MTASC_SCHED_SEED`). A non-zero seed
    /// jitters the rotating-priority scan offset (and the coarse-grain
    /// switch penalty) deterministically, so the scheduler still issues
    /// only ready threads — every perturbed run is a legal hardware
    /// schedule — but the interleaving of independent threads varies
    /// with the seed. Race-free programs produce bit-identical
    /// architectural state under every seed; schedule-dependent programs
    /// diverge. Used by `mtasc lint --schedules N` and the
    /// `tests/race_differential.rs` gate; see docs/static-analysis.md.
    pub sched_seed: u64,
}

impl MachineConfig {
    /// A full-featured machine: `num_pes` PEs, 16 threads, 4-ary broadcast
    /// tree, 16-bit datapath, pipelined multiplier and sequential divider.
    pub fn new(num_pes: usize) -> MachineConfig {
        let width = Width::W16;
        MachineConfig {
            num_pes,
            width,
            threads: 16,
            broadcast_arity: 4,
            lmem_words: 512,
            smem_words: 1024,
            imem_words: 4096,
            multiplier: MultiplierKind::DEFAULT_PIPELINED,
            divider: DividerConfig::default_sequential(width.bits()),
            sched: SchedPolicy::FineGrain,
            forwarding: true,
            fetch: FetchModel::Ideal,
            parallel_threshold: 4096,
            fusion: true,
            simd: true,
            segments: 0,
            sched_seed: 0,
        }
    }

    /// The FPGA prototype of Section 7: 16 PEs, 16 hardware threads, 1 KB
    /// of local memory per PE; multiplier, divider and inter-thread
    /// communication "still missing" (we leave mul/div out to match; the
    /// full machine uses [`MachineConfig::new`]).
    pub fn prototype() -> MachineConfig {
        MachineConfig {
            multiplier: MultiplierKind::None,
            divider: DividerConfig::None,
            ..MachineConfig::new(16)
        }
    }

    /// Same machine restricted to a single hardware thread — the
    /// pipelined-but-not-multithreaded baseline.
    pub fn single_threaded(mut self) -> MachineConfig {
        self.threads = 1;
        self
    }

    /// Switch to coarse-grain multithreading with the given switch
    /// penalty.
    pub fn coarse_grain(mut self, switch_penalty: u64) -> MachineConfig {
        self.sched = SchedPolicy::CoarseGrain { switch_penalty };
        self
    }

    /// Set the number of hardware threads.
    pub fn with_threads(mut self, threads: usize) -> MachineConfig {
        assert!(threads >= 1);
        self.threads = threads;
        self
    }

    /// Set the broadcast tree arity.
    pub fn with_arity(mut self, k: usize) -> MachineConfig {
        assert!(k >= 2);
        self.broadcast_arity = k;
        self
    }

    /// Disable the forwarding paths (ablation study: how much do the
    /// EX→B1 and EX→EX forwards buy?).
    pub fn without_forwarding(mut self) -> MachineConfig {
        self.forwarding = false;
        self
    }

    /// Model the fetch unit explicitly with per-thread instruction
    /// buffers of the given depth.
    pub fn with_fetch_buffers(mut self, buffer_depth: usize) -> MachineConfig {
        assert!(buffer_depth >= 1);
        self.fetch = FetchModel::Finite { buffer_depth };
        self
    }

    /// Disable the block-fusion engine: execute every parallel
    /// instruction as a full-array sweep at issue (the escape hatch
    /// behind `mtasc run --no-fuse`; results and timing are identical,
    /// only slower at scale).
    pub fn without_fusion(mut self) -> MachineConfig {
        self.fusion = false;
        self
    }

    /// Force the scalar reference loops: no vector kernels anywhere (the
    /// escape hatch behind `mtasc run --no-simd`; results and timing are
    /// identical, only slower on wide arrays).
    pub fn without_simd(mut self) -> MachineConfig {
        self.simd = false;
        self
    }

    /// The SIMD dispatch tier this machine will execute at: the host's
    /// best compiled-in tier, or [`asc_pe::SimdLevel::Scalar`] when vector
    /// execution is disabled by config or by `MTASC_NO_SIMD`. Resolved
    /// here once so the PE array and the block compiler always agree.
    pub fn simd_level(&self) -> asc_pe::SimdLevel {
        if self.simd {
            asc_pe::SimdLevel::detect()
        } else {
            asc_pe::SimdLevel::Scalar
        }
    }

    /// Set the datapath width.
    pub fn with_width(mut self, width: Width) -> MachineConfig {
        self.width = width;
        self
    }

    /// Set the requested segment count (`0` = automatic, `1` =
    /// monolithic).
    pub fn with_segments(mut self, segments: usize) -> MachineConfig {
        self.segments = segments;
        self
    }

    /// The segment count after the `MTASC_SEGMENTS` override.
    pub fn effective_segments(&self) -> usize {
        env_usize("MTASC_SEGMENTS").unwrap_or(self.segments)
    }

    /// Set the schedule-perturbation seed (`0` disables perturbation).
    pub fn with_sched_seed(mut self, seed: u64) -> MachineConfig {
        self.sched_seed = seed;
        self
    }

    /// The schedule-perturbation seed after the `MTASC_SCHED_SEED`
    /// override.
    pub fn effective_sched_seed(&self) -> u64 {
        env_usize("MTASC_SCHED_SEED").map(|s| s as u64).unwrap_or(self.sched_seed)
    }

    /// The Rayon dispatch threshold after the `MTASC_PAR_THRESHOLD`
    /// override.
    pub fn effective_parallel_threshold(&self) -> usize {
        env_usize("MTASC_PAR_THRESHOLD").unwrap_or(self.parallel_threshold)
    }

    /// The resolved segment slicing this machine will execute with
    /// (requested count, env override, rounding and capping applied).
    /// Resolved here once so the PE array, the network and the block
    /// compiler always agree.
    pub fn segment_geometry(&self) -> asc_pe::SegmentGeometry {
        asc_pe::SegmentGeometry::new(self.num_pes, self.effective_segments())
    }

    /// Network geometry for this machine.
    pub fn network(&self) -> NetworkConfig {
        NetworkConfig::new(self.num_pes, self.broadcast_arity)
            .with_segments(self.segment_geometry())
    }

    /// PE array geometry for this machine.
    pub fn array(&self) -> ArrayConfig {
        ArrayConfig {
            num_pes: self.num_pes,
            threads: self.threads,
            gprs: asc_isa::NUM_GPRS,
            flags: asc_isa::NUM_FLAGS,
            lmem_words: self.lmem_words,
            width: self.width,
            parallel_threshold: self.effective_parallel_threshold(),
            simd: self.simd_level(),
            segments: self.segment_geometry(),
        }
    }

    /// Pipeline timing parameters for this machine.
    pub fn timing(&self) -> Timing {
        let net = self.network();
        Timing {
            b: net.broadcast_latency(),
            r: net.reduction_latency(),
            multiplier: self.multiplier,
            divider: self.divider,
            forwarding: self.forwarding,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_matches_paper() {
        let c = MachineConfig::prototype();
        assert_eq!(c.num_pes, 16);
        assert_eq!(c.threads, 16);
        assert_eq!(c.lmem_words * (c.width.bits() as usize / 8) * 2 / 2, 1024, "1 KB local memory");
        let t = c.timing();
        assert_eq!(t.b, 2, "two broadcast stages, as in Figure 1");
        assert_eq!(t.r, 4, "four reduction stages, as in Figure 1");
        assert_eq!(c.multiplier, MultiplierKind::None);
    }

    #[test]
    fn builders() {
        let c = MachineConfig::new(64).with_threads(4).with_arity(8).single_threaded();
        assert_eq!(c.threads, 1);
        assert_eq!(c.broadcast_arity, 8);
        let c = MachineConfig::new(64).coarse_grain(5);
        assert_eq!(c.sched, SchedPolicy::CoarseGrain { switch_penalty: 5 });
    }

    #[test]
    fn timing_scales_with_pes() {
        let t = MachineConfig::new(1024).timing();
        assert_eq!(t.b, 5); // log4 1024
        assert_eq!(t.r, 10); // log2 1024
    }

    #[test]
    fn segment_geometry_is_plumbed_everywhere() {
        let c = MachineConfig::new(1 << 16).with_segments(4);
        let geo = c.segment_geometry();
        assert_eq!(geo.count(), 4);
        assert_eq!(c.array().segments, geo);
        assert_eq!(c.network().segments, geo);
        // timing is segment-invariant: same b/r as the monolithic build
        assert_eq!(c.timing(), MachineConfig::new(1 << 16).with_segments(1).timing());
        // default requests the automatic slicing
        assert_eq!(MachineConfig::new(16).segments, 0);
        assert!(!MachineConfig::new(16).segment_geometry().is_segmented());
    }
}
