//! The block-fusion execution engine: tiled, cache-resident execution of
//! *fusible parallel basic blocks*.
//!
//! ## What fuses
//!
//! A fusible block is a maximal straight-line run of parallel-class
//! instructions whose lane `l` results depend only on lane `l`'s own
//! state (see [`asc_isa::Instr::is_fusible`]): parallel ALU/compare with
//! register or immediate operands, flag logic, local loads/stores, and
//! `pidx`. Anything else ends a block — scalar register reads/writes
//! (`palus`, `pmovs`, …, which sample the scalar unit), network broadcast
//! or reduction operations, cross-lane shifts, control flow, and
//! inter-thread transfers. Blocks are discovered once per program load by
//! [`FusionPlan::build`] and cached keyed by entry PC (the plan *is* the
//! per-`(program, pc)` cache; loading a new program invalidates it by
//! rebuilding).
//!
//! ## How a block executes
//!
//! The instruction-major executor sweeps all `p` lanes once per
//! instruction, so between two dependent instructions a large array's
//! register planes are evicted from cache. The fusion engine inverts the
//! loop nest: when the *first* instruction of a block issues, the whole
//! block is applied **tile by tile** — all of the block's instructions run
//! over one 64-PE [`asc_pe::TileWindow`] before advancing to the next
//! tile — so a tile's working set (a handful of 64-word register slices
//! and one word per flag plane) stays resident across the block. Lane
//! locality of fusible instructions makes tile-major order bit-identical
//! to instruction-major order. In the parallel regime the rayon path
//! distributes *tiles* (not one instruction's lanes) over workers;
//! distinct tiles touch disjoint memory, so no synchronization is needed.
//!
//! ## Timing is unchanged
//!
//! Only architectural effects are batched. Every instruction of the block
//! still issues one per cycle through the scheduler and scoreboard —
//! hazards, structural stalls, statistics, and trace events are computed
//! exactly as before; the issue path merely skips `execute_instr` for
//! instructions whose effects were pre-applied ("ghost issues", counted
//! down by `Machine::fused_remaining`). Cycle counts, [`crate::Stats`],
//! and traces are bit-identical with fusion on or off.
//!
//! Fusion is gated conservatively so the batching can never be observed:
//! blocks only fuse while exactly one thread is live, and only when a
//! worst-case bound on the block's issue span fits inside the run's cycle
//! budget (so a [`crate::RunError::CycleLimit`] abort cannot land between
//! a block's pre-execution and its last ghost issue).
//!
//! ## Memory faults
//!
//! A faulting `plw`/`psw` lane reports the same error identity as the
//! instruction-major executor — lowest faulting PE of the *earliest*
//! faulting instruction, at that instruction's PC — but the sweep still
//! applies all non-faulting lanes of the whole block first. On the error
//! path (and only there) the partial architectural state left behind may
//! differ from the unfused executor's; successful runs are bit-identical.

use asc_isa::{DecodeError, Instr};

use crate::compile::{run_chain_tiles, CompiledOp};
use crate::config::MachineConfig;
use crate::error::RunError;
use crate::machine::Machine;

/// Shortest run worth fusing: a single instruction gains nothing from
/// tile-major order (it *is* one sweep either way).
pub const MIN_BLOCK_LEN: u32 = 2;

/// Why an instruction cannot join a fusible parallel basic block — the
/// answer to "why did this block cut here?". Produced by [`cut_reason`]
/// and [`fusible_runs`]; consumed by `asc-verify`'s fusion diagnostics
/// and anything else that wants to explain a [`FusionStats`] number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CutReason {
    /// Control flow: the thread's next fetch depends on this instruction.
    ControlFlow,
    /// A scalar-class instruction (control-unit datapath, including
    /// thread management): it does not run on the PE array at all.
    Scalar,
    /// A reduction-class instruction: couples all lanes through the
    /// reduction network.
    Reduction,
    /// A parallel instruction with a broadcast scalar operand
    /// (`palus`/`pcmps`/`pmovs`): samples the scalar register file at B1.
    ScalarBroadcast,
    /// The inter-PE shift network: lane `l` reads lane `l - dist`.
    CrossLaneShift,
    /// `mul`-family instruction on a machine with no multiplier — kept
    /// out of blocks so [`RunError::MissingUnit`] fires at its own issue.
    MissingMultiplier,
    /// `div`/`rem` on a machine with no divider (same trap rule).
    MissingDivider,
    /// The word at this address does not decode; execution would fault.
    Undecodable,
    /// The run reaches the end of instruction memory.
    EndOfProgram,
}

impl std::fmt::Display for CutReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CutReason::ControlFlow => "control flow",
            CutReason::Scalar => "scalar-class instruction",
            CutReason::Reduction => "reduction-network operation",
            CutReason::ScalarBroadcast => "broadcast scalar operand",
            CutReason::CrossLaneShift => "cross-lane shift network",
            CutReason::MissingMultiplier => "multiplier absent on this machine",
            CutReason::MissingDivider => "divider absent on this machine",
            CutReason::Undecodable => "undecodable word",
            CutReason::EndOfProgram => "end of program",
        })
    }
}

/// Why `i` cannot join a fusible block on a machine configured as `cfg`
/// (`None` means it fuses). This is the same predicate
/// `FusionPlan::build` applies, factored out so diagnostics can explain
/// every boundary the plan introduces.
pub fn cut_reason(i: &Instr, cfg: &MachineConfig) -> Option<CutReason> {
    use asc_isa::InstrClass;
    if i.is_fusible() {
        if i.uses_multiplier() && cfg.multiplier == asc_pe::MultiplierKind::None {
            return Some(CutReason::MissingMultiplier);
        }
        if i.uses_divider() && cfg.divider == asc_pe::DividerConfig::None {
            return Some(CutReason::MissingDivider);
        }
        return None;
    }
    Some(match i.class() {
        InstrClass::Scalar if i.is_branch() => CutReason::ControlFlow,
        InstrClass::Scalar => CutReason::Scalar,
        InstrClass::Reduction => CutReason::Reduction,
        InstrClass::Parallel => match i {
            Instr::PAluS { .. } | Instr::PCmpS { .. } | Instr::PMovS { .. } => {
                CutReason::ScalarBroadcast
            }
            Instr::PShift { .. } => CutReason::CrossLaneShift,
            _ => CutReason::Scalar,
        },
    })
}

/// One maximal fusible run of length ≥ [`MIN_BLOCK_LEN`] and the reason
/// it ends, as reported by [`fusible_runs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusibleRun {
    /// First instruction address of the run.
    pub start: u32,
    /// Number of fused instructions.
    pub len: u32,
    /// Address of the instruction that ended the run (`None` when the
    /// run ends because the program does).
    pub cut_pc: Option<u32>,
    /// Why the run ends there.
    pub cut: CutReason,
}

/// Every maximal fusible block the `FusionPlan` would build for this
/// instruction stream, each annotated with the boundary that ends it.
/// Runs shorter than [`MIN_BLOCK_LEN`] are not blocks and are skipped.
pub fn fusible_runs(imem: &[Result<Instr, DecodeError>], cfg: &MachineConfig) -> Vec<FusibleRun> {
    let plan = FusionPlan::build(imem, cfg);
    let mut out = Vec::new();
    let mut pc = 0usize;
    while pc < imem.len() {
        let len = plan.run_len_at(pc as u32);
        if len >= MIN_BLOCK_LEN {
            let next = pc + len as usize;
            let (cut_pc, cut) = match imem.get(next) {
                None => (None, CutReason::EndOfProgram),
                Some(Err(_)) => (Some(next as u32), CutReason::Undecodable),
                Some(Ok(i)) => (
                    Some(next as u32),
                    cut_reason(i, cfg).expect("instruction after a maximal run must cut"),
                ),
            };
            out.push(FusibleRun { start: pc as u32, len, cut_pc, cut });
        }
        pc += len.max(1) as usize;
    }
    out
}

/// The fusible-block plan for a loaded program: for every PC, the length
/// of the fusible run starting there (0 or 1 where nothing fuses).
#[derive(Debug, Clone)]
pub(crate) struct FusionPlan {
    /// `run_len[pc]` = number of consecutive fusible instructions at `pc`.
    run_len: Vec<u32>,
    /// Every maximal block's compiled chain, concatenated in program
    /// order. A suffix run (a jump into the middle of a block) is a
    /// sub-slice of its maximal block's chain, so one compilation covers
    /// every entry point.
    ops: Vec<CompiledOp>,
    /// Per PC: index into `ops` of this instruction's compiled form
    /// (`NO_CHAIN` where the PC is not covered by a block).
    chain_start: Vec<u32>,
    /// Static count of maximal blocks of length ≥ [`MIN_BLOCK_LEN`].
    static_blocks: u64,
    /// Static count of instructions covered by those blocks.
    static_fused_instrs: u64,
    /// Of the compiled ops, how many bound a vector (SIMD) kernel.
    simd_ops: u64,
}

/// `chain_start` sentinel: this PC has no compiled op.
const NO_CHAIN: u32 = u32::MAX;

impl FusionPlan {
    /// Scan the decoded instruction stream, record every fusible run, and
    /// lower each maximal block to a compiled kernel chain specialized
    /// for this machine's width and SIMD tier (see [`crate::compile`]).
    ///
    /// An instruction that would trap on this machine (`mul`/`div` with
    /// the unit absent) is excluded from fusion at plan time, so the
    /// [`RunError::MissingUnit`] error still fires at that instruction's
    /// own issue, not a block's entry.
    pub(crate) fn build(imem: &[Result<Instr, DecodeError>], cfg: &MachineConfig) -> FusionPlan {
        let n = imem.len();
        let level = cfg.simd_level();
        let mut run_len = vec![0u32; n];
        // Backward scan: run_len[pc] = 1 + run_len[pc + 1] where fusible.
        for pc in (0..n).rev() {
            let fusible = match &imem[pc] {
                Ok(i) => cut_reason(i, cfg).is_none(),
                Err(_) => false,
            };
            if fusible {
                run_len[pc] = 1 + run_len.get(pc + 1).copied().unwrap_or(0);
            }
        }
        // Walk maximal runs: static stats, and one compiled chain per
        // block (suffix entry points share the block's chain tail).
        let mut ops = Vec::new();
        let mut chain_start = vec![NO_CHAIN; n];
        let (mut static_blocks, mut static_fused_instrs, mut simd_ops) = (0, 0, 0);
        let mut pc = 0;
        while pc < n {
            let len = run_len[pc];
            if len >= MIN_BLOCK_LEN {
                static_blocks += 1;
                static_fused_instrs += len as u64;
                for k in 0..len as usize {
                    let i = imem[pc + k]
                        .as_ref()
                        .expect("fusible runs only cover decodable instructions");
                    chain_start[pc + k] = ops.len() as u32;
                    ops.push(CompiledOp::compile(i, cfg.width, level));
                    simd_ops += u64::from(CompiledOp::vectorizes(i, level));
                }
            }
            pc += len.max(1) as usize;
        }
        FusionPlan { run_len, ops, chain_start, static_blocks, static_fused_instrs, simd_ops }
    }

    /// Length of the fusible run starting at `pc` (0 if none).
    pub(crate) fn run_len_at(&self, pc: u32) -> u32 {
        self.run_len.get(pc as usize).copied().unwrap_or(0)
    }

    /// The compiled chain for the run `[pc, pc + len)`. Only valid for
    /// `len <= run_len_at(pc)` — the gate `Machine::fusible_block_len`
    /// checks before execution.
    pub(crate) fn chain(&self, pc: u32, len: u32) -> &[CompiledOp] {
        let s = self.chain_start[pc as usize];
        debug_assert_ne!(s, NO_CHAIN, "no compiled chain at pc {pc}");
        &self.ops[s as usize..s as usize + len as usize]
    }

    pub(crate) fn static_blocks(&self) -> u64 {
        self.static_blocks
    }

    pub(crate) fn static_fused_instrs(&self) -> u64 {
        self.static_fused_instrs
    }

    pub(crate) fn simd_ops(&self) -> u64 {
        self.simd_ops
    }
}

/// Block-fusion counters, reported by [`Machine::fusion_stats`] and
/// printed by `mtasc run --fusion-stats`. Kept outside [`crate::Stats`]
/// so the statistics report stays bit-identical with fusion on or off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// Fusible blocks in the loaded program (static).
    pub static_blocks: u64,
    /// Instructions covered by those blocks (static).
    pub static_fused_instrs: u64,
    /// Compiled kernel ops materialized by the block compiler (static;
    /// one per instruction of every maximal block).
    pub compiled_ops: u64,
    /// Of the compiled ops, how many bound a vector (SIMD) kernel rather
    /// than the scalar reference loop (static).
    pub simd_ops: u64,
    /// Blocks executed by the tiled engine (dynamic).
    pub blocks_executed: u64,
    /// Dynamic instructions whose effects ran through the tiled engine.
    pub instrs_fused: u64,
    /// Per-tile compiled-chain dispatches (dynamic: one per block × tile
    /// swept by the engine).
    pub tile_chains: u64,
}

impl FusionStats {
    /// Mean static block length (0 when the program has no blocks).
    pub fn mean_block_len(&self) -> f64 {
        if self.static_blocks == 0 {
            0.0
        } else {
            self.static_fused_instrs as f64 / self.static_blocks as f64
        }
    }

    /// Fraction of `issued` dynamic instructions executed fused.
    pub fn fused_fraction(&self, issued: u64) -> f64 {
        if issued == 0 {
            0.0
        } else {
            self.instrs_fused as f64 / issued as f64
        }
    }
}

impl Machine {
    /// Should the block starting at `(tid, pc)` be pre-executed now?
    /// Returns its length if every fusion gate passes.
    pub(crate) fn fusible_block_len(&self, pc: u32) -> Option<u32> {
        let plan = self.fusion_plan.as_ref()?;
        let len = plan.run_len_at(pc);
        if len < MIN_BLOCK_LEN {
            return None;
        }
        // A second live thread could issue into the middle of the block
        // and observe (or disturb) its batched effects out of order.
        if self.threads.live_count() != 1 {
            return None;
        }
        // Fuel gate: even if every remaining issue of the block stalls
        // for the worst possible hazard span, the block must finish
        // issuing inside the run's cycle budget, so a CycleLimit abort
        // can never land with a block half-credited. `fuse_horizon` is 0
        // outside `Machine::run`, so bare `step()` loops never fuse.
        let span = (len as u64).saturating_mul(self.worst_issue_gap());
        if self.cycle.saturating_add(span) > self.fuse_horizon {
            return None;
        }
        Some(len)
    }

    /// Conservative upper bound on the cycles between two consecutive
    /// issues of the same thread's straight-line code: worst RAW wait
    /// (produce depth of the slowest unit past the broadcast and
    /// reduction trees) plus slack for structural waits.
    fn worst_issue_gap(&self) -> u64 {
        let mul = match self.timing.multiplier {
            asc_pe::MultiplierKind::None => 0,
            asc_pe::MultiplierKind::Pipelined { latency } => latency,
            asc_pe::MultiplierKind::Sequential { cycles } => cycles,
        };
        let div = match self.timing.divider {
            asc_pe::DividerConfig::None => 0,
            asc_pe::DividerConfig::Sequential { cycles } => cycles,
        };
        self.timing.b + self.timing.r + 2 * (mul + div) + 8
    }

    /// Pre-execute the fusible block `[pc, pc + len)` for `tid` through
    /// its compiled kernel chain, tile-by-tile. Called at the issue of
    /// the block's first instruction; the remaining `len - 1` issues are
    /// ghosts (timing only).
    pub(crate) fn execute_block(&mut self, tid: usize, pc: u32, len: u32) -> Result<(), RunError> {
        // The plan is moved out for the duration of the sweep so the
        // chain borrow cannot conflict with the array borrow (no
        // allocation — `Option::take`).
        let plan = self.fusion_plan.take().expect("execute_block requires a fusion plan");
        // One all-active fill serves the whole block: fusible masks are
        // either `Mask::All` (this mask, read per tile) or a flag plane
        // (read per tile at execution order, preserving self-masking
        // semantics).
        self.array.fill_active(tid, asc_isa::Mask::All, &mut self.amask);
        let geo = self.array.segments();
        let parallel = self.cfg.num_pes >= self.array.config().parallel_threshold;
        let chain = plan.chain(pc, len);
        // The chain writes planes through raw tile windows, bypassing the
        // array's marking mutators — commit its destinations up front.
        for op in chain {
            match op.dst() {
                crate::compile::DstKind::None => {}
                crate::compile::DstKind::Gpr(r) => self.array.note_gpr_write(tid, r as usize),
                crate::compile::DstKind::Flag(f) => self.array.note_flag_write(tid, f as usize),
                crate::compile::DstKind::LmemRow(r) => self.array.note_lmem_write(Some(r as i64)),
                crate::compile::DstKind::LmemRows => self.array.note_lmem_write(None),
            }
        }
        let fault = {
            let mut tiles = self.array.thread_tiles(tid);
            self.fusion_dyn.tile_chains += tiles.num_tiles() as u64;
            run_chain_tiles(chain, &mut tiles, &self.amask, parallel, geo)
        };
        self.fusion_dyn.blocks_executed += 1;
        self.fusion_dyn.instrs_fused += len as u64;
        self.fusion_plan = Some(plan);
        match fault {
            None => Ok(()),
            Some((k, fault)) => Err(RunError::PeMemoryFault { thread: tid, pc: pc + k, fault }),
        }
    }

    /// Block-fusion counters for the loaded program and the run so far.
    pub fn fusion_stats(&self) -> FusionStats {
        let mut s = self.fusion_dyn;
        if let Some(plan) = &self.fusion_plan {
            s.static_blocks = plan.static_blocks();
            s.static_fused_instrs = plan.static_fused_instrs();
            s.compiled_ops = plan.static_fused_instrs();
            s.simd_ops = plan.simd_ops();
        }
        s
    }

    /// The SIMD dispatch tier this machine's plane sweeps and compiled
    /// block kernels execute at (resolved once at construction).
    pub fn simd_level(&self) -> asc_pe::SimdLevel {
        self.array.config().simd
    }
}
