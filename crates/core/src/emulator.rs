//! Fast functional emulator: executes the same architectural semantics as
//! the timing machine, one instruction per "step", round-robin over
//! runnable threads, with no hazard or pipeline modelling.
//!
//! Used for kernel development and as the reference in differential tests:
//! for programs without inter-thread communication the final architectural
//! state must match the timing machine exactly (timing only *delays*
//! instructions; it never changes what they compute).

use asc_asm::Program;
use asc_isa::{Instr, Word};
use asc_pe::{DividerConfig, MultiplierKind, PeArray};

use crate::config::MachineConfig;
use crate::error::RunError;
use crate::exec::Effect;
use crate::machine::Machine;
use crate::threads::ThreadState;

/// The functional emulator. Wraps the same architectural state as
/// [`Machine`]; only the stepping discipline differs.
#[derive(Debug, Clone)]
pub struct Emulator {
    m: Machine,
    rr: usize,
    executed: u64,
}

impl Emulator {
    /// Build an emulator for a configuration.
    pub fn new(cfg: MachineConfig) -> Emulator {
        Emulator { m: Machine::new(cfg), rr: 0, executed: 0 }
    }

    /// Build and load a program.
    pub fn with_program(cfg: MachineConfig, program: &Program) -> Result<Emulator, RunError> {
        let mut e = Emulator::new(cfg);
        e.m.load_program(program)?;
        Ok(e)
    }

    /// Load an assembled program.
    pub fn load_program(&mut self, program: &Program) -> Result<(), RunError> {
        self.m.load_program(program)
    }

    /// Instructions executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// True once halted or all threads exited.
    pub fn finished(&self) -> bool {
        self.m.finished()
    }

    /// Borrow the underlying architectural state.
    pub fn machine(&self) -> &Machine {
        &self.m
    }

    /// Mutably borrow the underlying architectural state (host data
    /// distribution).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.m
    }

    /// Host read of a scalar register.
    pub fn sreg(&self, thread: usize, reg: usize) -> Word {
        self.m.sreg(thread, reg)
    }

    /// Host access to the PE array.
    pub fn array(&self) -> &PeArray {
        self.m.array()
    }

    /// Host mutable access to the PE array.
    pub fn array_mut(&mut self) -> &mut PeArray {
        self.m.array_mut()
    }

    /// Execute one instruction from the next runnable thread (round-robin).
    /// Returns `false` when the machine has finished.
    pub fn step(&mut self) -> Result<bool, RunError> {
        if self.m.finished() {
            return Ok(false);
        }
        let n = self.m.threads.len();
        let Some(tid) = self
            .m
            .threads
            .rotation(self.rr)
            .find(|&t| self.m.threads.get(t).state == ThreadState::Runnable)
        else {
            // live but nothing runnable: join deadlock
            return Err(RunError::Deadlock { cycle: self.executed });
        };
        self.rr = (tid + 1) % n;

        let pc = self.m.threads.get(tid).pc;
        let instr = self.m.fetch(tid, pc)?;
        if instr.uses_multiplier() && self.m.config().multiplier == MultiplierKind::None {
            return Err(RunError::MissingUnit { thread: tid, pc, unit: "multiplier" });
        }
        if instr.uses_divider() && self.m.config().divider == DividerConfig::None {
            return Err(RunError::MissingUnit { thread: tid, pc, unit: "divider" });
        }
        let effect = self.m.execute_instr(tid, pc, &instr)?;
        self.executed += 1;
        match effect {
            Effect::Next => self.m.threads.get_mut(tid).pc = pc + 1,
            Effect::Branch(t) => self.m.threads.get_mut(tid).pc = t,
            Effect::Halt => {
                self.m.threads.get_mut(tid).pc = pc + 1;
                self.m.force_halt();
            }
            Effect::Exit => {
                self.m.threads.release(tid);
            }
            Effect::JoinWait(target) => {
                let row = self.m.threads.get_mut(tid);
                row.pc = pc + 1;
                row.state = ThreadState::WaitingJoin(target);
            }
        }
        Ok(true)
    }

    /// Run to completion or `max_steps`. Returns instructions executed.
    pub fn run(&mut self, max_steps: u64) -> Result<u64, RunError> {
        while self.step()? {
            if self.executed >= max_steps {
                return Err(RunError::CycleLimit { limit: max_steps });
            }
        }
        Ok(self.executed)
    }

    /// Run, calling `cost` for every executed instruction and summing —
    /// the per-instruction cycle-cost loop used by the non-pipelined
    /// baseline model.
    pub fn run_costed(
        &mut self,
        max_steps: u64,
        mut cost: impl FnMut(&Instr) -> u64,
    ) -> Result<u64, RunError> {
        let mut cycles = 0u64;
        while !self.m.finished() {
            if self.executed >= max_steps {
                return Err(RunError::CycleLimit { limit: max_steps });
            }
            let before = self.executed;
            let instr = self.peek_next()?;
            if !self.step()? {
                break;
            }
            debug_assert_eq!(self.executed, before + 1);
            cycles += cost(&instr);
        }
        Ok(cycles)
    }

    fn peek_next(&self) -> Result<Instr, RunError> {
        let Some(tid) = self
            .m
            .threads
            .rotation(self.rr)
            .find(|&t| self.m.threads.get(t).state == ThreadState::Runnable)
        else {
            return Err(RunError::Deadlock { cycle: self.executed });
        };
        let pc = self.m.threads.get(tid).pc;
        self.m.fetch(tid, pc)
    }
}
