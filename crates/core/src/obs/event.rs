//! The trace-event vocabulary: everything the simulator can tell a
//! [`TraceSink`](super::TraceSink), one typed record per occurrence.
//!
//! Events serialize to flat JSON objects (one per line in a JSON-Lines
//! trace) with a `"ev"` discriminator; [`TraceEvent::to_json`] and
//! [`TraceEvent::from_json`] round-trip exactly. Instructions are carried
//! as their encoded machine word (`asc_isa::encode`), which is compact and
//! lossless; decode with `asc_isa::decode` to inspect.

use asc_isa::InstrClass;
use asc_network::NetUnit;

use super::json::Json;
use crate::stats::StallReason;

/// A change of thread run state visible in the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadTransition {
    /// Context allocated by `tspawn`.
    Spawned,
    /// Context released by `texit`.
    Exited,
    /// Blocked in `tjoin` on the named thread.
    JoinWait {
        /// The thread being joined.
        target: usize,
    },
    /// Woken because the joined thread released its context.
    Woken,
}

impl ThreadTransition {
    const fn label(self) -> &'static str {
        match self {
            ThreadTransition::Spawned => "spawned",
            ThreadTransition::Exited => "exited",
            ThreadTransition::JoinWait { .. } => "join_wait",
            ThreadTransition::Woken => "woken",
        }
    }
}

/// One of the sequential (non-pipelined) multiplier/divider units.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqUnit {
    /// The scalar side's multiplier.
    ScalarMul,
    /// The scalar side's divider.
    ScalarDiv,
    /// The PE array's multiplier.
    ParallelMul,
    /// The PE array's divider.
    ParallelDiv,
}

impl SeqUnit {
    /// Stable machine-readable name.
    pub const fn label(self) -> &'static str {
        match self {
            SeqUnit::ScalarMul => "scalar_mul",
            SeqUnit::ScalarDiv => "scalar_div",
            SeqUnit::ParallelMul => "parallel_mul",
            SeqUnit::ParallelDiv => "parallel_div",
        }
    }

    fn from_label(s: &str) -> Option<SeqUnit> {
        [SeqUnit::ScalarMul, SeqUnit::ScalarDiv, SeqUnit::ParallelMul, SeqUnit::ParallelDiv]
            .into_iter()
            .find(|u| u.label() == s)
    }
}

/// One observed occurrence in a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// An instruction issued (entered SR).
    Issue {
        /// Issue cycle.
        cycle: u64,
        /// Issuing thread.
        thread: usize,
        /// Instruction address.
        pc: u32,
        /// Pipeline class.
        class: InstrClass,
        /// Encoded instruction word (`asc_isa::decode` recovers it).
        word: u32,
    },
    /// An instruction will leave the pipeline (its WB stage). The
    /// simulator resolves retirement at issue, so this event is emitted
    /// together with [`TraceEvent::Issue`] carrying the *future* WB cycle.
    Retire {
        /// WB cycle.
        cycle: u64,
        /// Thread that issued the instruction.
        thread: usize,
        /// Instruction address.
        pc: u32,
        /// Pipeline class.
        class: InstrClass,
    },
    /// The issue slot went empty; one event per stall *span* (the
    /// simulator fast-forwards long waits).
    Stall {
        /// First stalled cycle.
        cycle: u64,
        /// Attributed reason (highest-priority blocked thread).
        reason: StallReason,
        /// Length of the span in cycles (≥ 1).
        cycles: u64,
    },
    /// A broadcast/reduction network operation entered its tree.
    NetOp {
        /// Cycle the operation entered the unit.
        cycle: u64,
        /// Issuing thread.
        thread: usize,
        /// Which unit.
        unit: NetUnit,
        /// Tree traversal latency in cycles; the operation completes at
        /// `cycle + latency`.
        latency: u64,
    },
    /// A thread changed run state.
    Thread {
        /// Cycle of the transition.
        cycle: u64,
        /// The thread whose state changed.
        thread: usize,
        /// What happened.
        transition: ThreadTransition,
    },
    /// A sequential multiplier/divider was claimed (structural-hazard
    /// busy span).
    UnitBusy {
        /// Cycle the unit starts executing.
        cycle: u64,
        /// Claiming thread.
        thread: usize,
        /// Which unit.
        unit: SeqUnit,
        /// The unit is busy through `cycle + busy_for - 1`.
        busy_for: u64,
    },
}

fn class_label(c: InstrClass) -> &'static str {
    match c {
        InstrClass::Scalar => "scalar",
        InstrClass::Parallel => "parallel",
        InstrClass::Reduction => "reduction",
    }
}

fn class_from_label(s: &str) -> Option<InstrClass> {
    match s {
        "scalar" => Some(InstrClass::Scalar),
        "parallel" => Some(InstrClass::Parallel),
        "reduction" => Some(InstrClass::Reduction),
        _ => None,
    }
}

fn stall_from_label(s: &str) -> Option<StallReason> {
    StallReason::ALL.into_iter().find(|r| r.label() == s)
}

impl TraceEvent {
    /// The event's discriminator, as serialized in the `"ev"` field.
    pub const fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Issue { .. } => "issue",
            TraceEvent::Retire { .. } => "retire",
            TraceEvent::Stall { .. } => "stall",
            TraceEvent::NetOp { .. } => "net_op",
            TraceEvent::Thread { .. } => "thread",
            TraceEvent::UnitBusy { .. } => "unit_busy",
        }
    }

    /// The cycle the event is stamped with.
    pub const fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Issue { cycle, .. }
            | TraceEvent::Retire { cycle, .. }
            | TraceEvent::Stall { cycle, .. }
            | TraceEvent::NetOp { cycle, .. }
            | TraceEvent::Thread { cycle, .. }
            | TraceEvent::UnitBusy { cycle, .. } => cycle,
        }
    }

    /// Serialize as a flat JSON object.
    pub fn to_json(&self) -> Json {
        let mut o: Vec<(String, Json)> =
            vec![("ev".into(), Json::str(self.kind())), ("cycle".into(), Json::U64(self.cycle()))];
        match *self {
            TraceEvent::Issue { thread, pc, class, word, .. } => {
                o.push(("thread".into(), Json::U64(thread as u64)));
                o.push(("pc".into(), Json::U64(pc as u64)));
                o.push(("class".into(), Json::str(class_label(class))));
                o.push(("word".into(), Json::U64(word as u64)));
            }
            TraceEvent::Retire { thread, pc, class, .. } => {
                o.push(("thread".into(), Json::U64(thread as u64)));
                o.push(("pc".into(), Json::U64(pc as u64)));
                o.push(("class".into(), Json::str(class_label(class))));
            }
            TraceEvent::Stall { reason, cycles, .. } => {
                o.push(("reason".into(), Json::str(reason.label())));
                o.push(("cycles".into(), Json::U64(cycles)));
            }
            TraceEvent::NetOp { thread, unit, latency, .. } => {
                o.push(("thread".into(), Json::U64(thread as u64)));
                o.push(("unit".into(), Json::str(unit.label())));
                o.push(("latency".into(), Json::U64(latency)));
            }
            TraceEvent::Thread { thread, transition, .. } => {
                o.push(("thread".into(), Json::U64(thread as u64)));
                o.push(("transition".into(), Json::str(transition.label())));
                if let ThreadTransition::JoinWait { target } = transition {
                    o.push(("target".into(), Json::U64(target as u64)));
                }
            }
            TraceEvent::UnitBusy { thread, unit, busy_for, .. } => {
                o.push(("thread".into(), Json::U64(thread as u64)));
                o.push(("unit".into(), Json::str(unit.label())));
                o.push(("busy_for".into(), Json::U64(busy_for)));
            }
        }
        Json::Obj(o)
    }

    /// Deserialize from the object produced by [`TraceEvent::to_json`].
    pub fn from_json(v: &Json) -> Option<TraceEvent> {
        let cycle = v.get("cycle")?.as_u64()?;
        let thread = || v.get("thread")?.as_u64().map(|t| t as usize);
        let class = || class_from_label(v.get("class")?.as_str()?);
        match v.get("ev")?.as_str()? {
            "issue" => Some(TraceEvent::Issue {
                cycle,
                thread: thread()?,
                pc: v.get("pc")?.as_u64()? as u32,
                class: class()?,
                word: v.get("word")?.as_u64()? as u32,
            }),
            "retire" => Some(TraceEvent::Retire {
                cycle,
                thread: thread()?,
                pc: v.get("pc")?.as_u64()? as u32,
                class: class()?,
            }),
            "stall" => Some(TraceEvent::Stall {
                cycle,
                reason: stall_from_label(v.get("reason")?.as_str()?)?,
                cycles: v.get("cycles")?.as_u64()?,
            }),
            "net_op" => Some(TraceEvent::NetOp {
                cycle,
                thread: thread()?,
                unit: NetUnit::from_label(v.get("unit")?.as_str()?)?,
                latency: v.get("latency")?.as_u64()?,
            }),
            "thread" => {
                let transition = match v.get("transition")?.as_str()? {
                    "spawned" => ThreadTransition::Spawned,
                    "exited" => ThreadTransition::Exited,
                    "woken" => ThreadTransition::Woken,
                    "join_wait" => {
                        ThreadTransition::JoinWait { target: v.get("target")?.as_u64()? as usize }
                    }
                    _ => return None,
                };
                Some(TraceEvent::Thread { cycle, thread: thread()?, transition })
            }
            "unit_busy" => Some(TraceEvent::UnitBusy {
                cycle,
                thread: thread()?,
                unit: SeqUnit::from_label(v.get("unit")?.as_str()?)?,
                busy_for: v.get("busy_for")?.as_u64()?,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// One sample of every variant (used by the round-trip tests here and
    /// in `trace.rs`).
    pub(crate) fn samples() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Issue {
                cycle: 3,
                thread: 1,
                pc: 7,
                class: InstrClass::Parallel,
                word: 0xdead_beef,
            },
            TraceEvent::Retire { cycle: 9, thread: 1, pc: 7, class: InstrClass::Reduction },
            TraceEvent::Stall { cycle: 4, reason: StallReason::ReductionHazard, cycles: 6 },
            TraceEvent::NetOp { cycle: 5, thread: 0, unit: NetUnit::Sum, latency: 4 },
            TraceEvent::Thread { cycle: 6, thread: 2, transition: ThreadTransition::Spawned },
            TraceEvent::Thread {
                cycle: 7,
                thread: 0,
                transition: ThreadTransition::JoinWait { target: 2 },
            },
            TraceEvent::Thread { cycle: 8, thread: 2, transition: ThreadTransition::Exited },
            TraceEvent::Thread { cycle: 8, thread: 0, transition: ThreadTransition::Woken },
            TraceEvent::UnitBusy { cycle: 10, thread: 3, unit: SeqUnit::ParallelDiv, busy_for: 18 },
        ]
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        for ev in samples() {
            let json = ev.to_json();
            let text = json.to_compact();
            let parsed = Json::parse(&text).unwrap();
            assert_eq!(TraceEvent::from_json(&parsed), Some(ev), "{text}");
        }
    }

    #[test]
    fn kind_and_cycle_accessors() {
        let ev = TraceEvent::Stall { cycle: 11, reason: StallReason::DataHazard, cycles: 2 };
        assert_eq!(ev.kind(), "stall");
        assert_eq!(ev.cycle(), 11);
        assert_eq!(ev.to_json().get("ev").unwrap().as_str(), Some("stall"));
    }

    #[test]
    fn from_json_rejects_malformed_events() {
        for bad in [
            r#"{"cycle":1}"#,
            r#"{"ev":"issue","cycle":1}"#,
            r#"{"ev":"stall","cycle":1,"reason":"sunspots","cycles":2}"#,
            r#"{"ev":"warp","cycle":1}"#,
        ] {
            let v = Json::parse(bad).unwrap();
            assert_eq!(TraceEvent::from_json(&v), None, "{bad}");
        }
    }
}
