//! Chrome `trace_event` / Perfetto export of a [`TraceEvent`] stream.
//!
//! [`chrome_trace`] converts a recorded event stream into the JSON object
//! format that `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)
//! load directly: per-thread tracks of issued instructions (one 1-cycle
//! slice each, disassembled), per-stage pipeline tracks (each issue also
//! paints its B1..Bb/PR/EX/R1..Rr/WB stages at their scheduled cycles),
//! the stall track, sequential-unit busy spans, thread-lifecycle instants,
//! and network in-flight counters derived from [`TraceEvent::NetOp`]
//! start/latency pairs. One simulated cycle is rendered as one
//! microsecond.
//!
//! The output is deterministic — object keys and event order depend only
//! on the input stream — so golden-file tests diff cleanly;
//! [`chrome_trace_text`] renders it one event per line for reviewable
//! fixtures.

use std::collections::BTreeMap;

use asc_isa::InstrClass;
use asc_network::NetUnit;

use super::event::TraceEvent;
use super::json::Json;
use crate::timing::Timing;

/// Track (Chrome `tid`) layout. Threads occupy 0..N; the constants below
/// leave room for any realistic thread count.
const TID_STALLS: u64 = 90;
const TID_STAGES: u64 = 100; // + class_index * 32 + stage_index
const TID_UNITS: u64 = 200; // + SeqUnit order of appearance
const TID_COUNTERS: u64 = 300; // + NetUnit::index()

fn class_index(c: InstrClass) -> u64 {
    match c {
        InstrClass::Scalar => 0,
        InstrClass::Parallel => 1,
        InstrClass::Reduction => 2,
    }
}

fn class_label(c: InstrClass) -> &'static str {
    match c {
        InstrClass::Scalar => "scalar",
        InstrClass::Parallel => "parallel",
        InstrClass::Reduction => "reduction",
    }
}

/// A complete-slice (`ph:"X"`) event. Field order is part of the golden
/// contract: name, ph, ts, dur, pid, tid, args.
fn slice(name: &str, ts: u64, dur: u64, tid: u64, args: Vec<(String, Json)>) -> Json {
    let mut o = vec![
        ("name".into(), Json::str(name)),
        ("ph".into(), Json::str("X")),
        ("ts".into(), Json::U64(ts)),
        ("dur".into(), Json::U64(dur.max(1))),
        ("pid".into(), Json::U64(0)),
        ("tid".into(), Json::U64(tid)),
    ];
    if !args.is_empty() {
        o.push(("args".into(), Json::Obj(args)));
    }
    Json::Obj(o)
}

/// An instant (`ph:"i"`) event on a thread track.
fn instant(name: &str, ts: u64, tid: u64) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::str(name)),
        ("ph".into(), Json::str("i")),
        ("ts".into(), Json::U64(ts)),
        ("pid".into(), Json::U64(0)),
        ("tid".into(), Json::U64(tid)),
        ("s".into(), Json::str("t")),
    ])
}

/// A counter (`ph:"C"`) sample.
fn counter(name: &str, ts: u64, tid: u64, series: &str, value: u64) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::str(name)),
        ("ph".into(), Json::str("C")),
        ("ts".into(), Json::U64(ts)),
        ("pid".into(), Json::U64(0)),
        ("tid".into(), Json::U64(tid)),
        ("args".into(), Json::Obj(vec![(series.into(), Json::U64(value))])),
    ])
}

/// Metadata (`ph:"M"`) naming a track and pinning its sort order.
fn track_meta(tid: u64, name: &str, sort: u64, out: &mut Vec<Json>) {
    out.push(Json::Obj(vec![
        ("name".into(), Json::str("thread_name")),
        ("ph".into(), Json::str("M")),
        ("pid".into(), Json::U64(0)),
        ("tid".into(), Json::U64(tid)),
        ("args".into(), Json::Obj(vec![("name".into(), Json::str(name))])),
    ]));
    out.push(Json::Obj(vec![
        ("name".into(), Json::str("thread_sort_index")),
        ("ph".into(), Json::str("M")),
        ("pid".into(), Json::U64(0)),
        ("tid".into(), Json::U64(tid)),
        ("args".into(), Json::Obj(vec![("sort_index".into(), Json::U64(sort))])),
    ]));
}

fn disasm_word(word: u32) -> String {
    match asc_isa::decode(word) {
        Ok(i) => asc_asm::disassemble(&i),
        Err(_) => format!("word {word:#010x}"),
    }
}

/// Convert an event stream into a Chrome `trace_event` JSON document
/// (`{"traceEvents": [...]}`), rendering per-thread instruction tracks,
/// per-stage pipeline slices (scheduled with `timing`), the stall track,
/// sequential-unit busy spans, and per-unit network in-flight counters.
/// 1 cycle = 1 µs. Load the output in `chrome://tracing` or Perfetto.
pub fn chrome_trace(events: &[TraceEvent], timing: &Timing) -> Json {
    let mut out: Vec<Json> = Vec::new();

    // ------------------------------------------------------ metadata (M)
    out.push(Json::Obj(vec![
        ("name".into(), Json::str("process_name")),
        ("ph".into(), Json::str("M")),
        ("pid".into(), Json::U64(0)),
        ("args".into(), Json::Obj(vec![("name".into(), Json::str("mtasc"))])),
    ]));
    let max_thread = events
        .iter()
        .filter_map(|ev| match *ev {
            TraceEvent::Issue { thread, .. }
            | TraceEvent::Retire { thread, .. }
            | TraceEvent::NetOp { thread, .. }
            | TraceEvent::Thread { thread, .. }
            | TraceEvent::UnitBusy { thread, .. } => Some(thread as u64),
            TraceEvent::Stall { .. } => None,
        })
        .max();
    if let Some(max_thread) = max_thread {
        for t in 0..=max_thread {
            track_meta(t, &format!("thread {t}"), t, &mut out);
        }
    }
    if events.iter().any(|ev| matches!(ev, TraceEvent::Stall { .. })) {
        track_meta(TID_STALLS, "stalls", TID_STALLS, &mut out);
    }
    // pipeline-stage tracks, in class-then-stage order, only those used
    let mut classes_seen = [false; 3];
    for ev in events {
        if let TraceEvent::Issue { class, .. } = ev {
            classes_seen[class_index(*class) as usize] = true;
        }
    }
    for class in [InstrClass::Scalar, InstrClass::Parallel, InstrClass::Reduction] {
        if !classes_seen[class_index(class) as usize] {
            continue;
        }
        for (j, stage) in timing.stage_names(class).iter().enumerate() {
            let tid = TID_STAGES + class_index(class) * 32 + j as u64;
            track_meta(tid, &format!("{}.{}", class_label(class), stage), tid, &mut out);
        }
    }
    // sequential-unit tracks, in order of first appearance
    let mut seq_units: Vec<&'static str> = Vec::new();
    for ev in events {
        if let TraceEvent::UnitBusy { unit, .. } = ev {
            if !seq_units.contains(&unit.label()) {
                seq_units.push(unit.label());
            }
        }
    }
    for (k, label) in seq_units.iter().enumerate() {
        track_meta(TID_UNITS + k as u64, label, TID_UNITS + k as u64, &mut out);
    }
    // network counter tracks, in NetUnit order
    let mut net_used = [false; NetUnit::ALL.len()];
    for ev in events {
        if let TraceEvent::NetOp { unit, .. } = ev {
            net_used[unit.index()] = true;
        }
    }
    for unit in NetUnit::ALL {
        if net_used[unit.index()] {
            let tid = TID_COUNTERS + unit.index() as u64;
            track_meta(tid, &format!("inflight.{}", unit.label()), tid, &mut out);
        }
    }

    // ------------------------------------------------------- slice events
    for ev in events {
        match *ev {
            TraceEvent::Issue { cycle, thread, pc, class, word } => {
                out.push(slice(
                    &disasm_word(word),
                    cycle,
                    1,
                    thread as u64,
                    vec![
                        ("pc".into(), Json::U64(pc as u64)),
                        ("class".into(), Json::str(class_label(class))),
                    ],
                ));
                // paint the instruction's pipeline stages: stage j of the
                // class schedule executes at issue + j (Figure 1)
                for (j, stage) in timing.stage_names(class).iter().enumerate() {
                    let tid = TID_STAGES + class_index(class) * 32 + j as u64;
                    out.push(slice(
                        stage,
                        cycle + j as u64,
                        1,
                        tid,
                        vec![
                            ("thread".into(), Json::U64(thread as u64)),
                            ("pc".into(), Json::U64(pc as u64)),
                        ],
                    ));
                }
            }
            // retirement is already visible as the WB stage slice
            TraceEvent::Retire { .. } => {}
            TraceEvent::Stall { cycle, reason, cycles } => {
                out.push(slice(reason.label(), cycle, cycles, TID_STALLS, Vec::new()));
            }
            TraceEvent::NetOp { .. } => {} // rendered as counters below
            TraceEvent::Thread { cycle, thread, transition } => {
                out.push(instant(transition_label(transition), cycle, thread as u64));
            }
            TraceEvent::UnitBusy { cycle, thread, unit, busy_for } => {
                let k = seq_units.iter().position(|&l| l == unit.label()).unwrap() as u64;
                out.push(slice(
                    unit.label(),
                    cycle,
                    busy_for,
                    TID_UNITS + k,
                    vec![("thread".into(), Json::U64(thread as u64))],
                ));
            }
        }
    }

    // --------------------------------------- network in-flight counters
    // Each NetOp occupies its tree for [cycle, cycle + latency); integrate
    // +1/-1 deltas into a step function sampled at every change point.
    for unit in NetUnit::ALL {
        if !net_used[unit.index()] {
            continue;
        }
        let mut deltas: BTreeMap<u64, i64> = BTreeMap::new();
        for ev in events {
            if let TraceEvent::NetOp { cycle, unit: u, latency, .. } = *ev {
                if u == unit {
                    *deltas.entry(cycle).or_insert(0) += 1;
                    *deltas.entry(cycle + latency.max(1)).or_insert(0) -= 1;
                }
            }
        }
        let name = format!("inflight.{}", unit.label());
        let tid = TID_COUNTERS + unit.index() as u64;
        let mut level: i64 = 0;
        for (cycle, delta) in deltas {
            level += delta;
            debug_assert!(level >= 0, "counter went negative");
            out.push(counter(&name, cycle, tid, "ops", level.max(0) as u64));
        }
    }

    Json::Obj(vec![("traceEvents".into(), Json::Arr(out))])
}

fn transition_label(t: super::event::ThreadTransition) -> &'static str {
    use super::event::ThreadTransition::*;
    match t {
        Spawned => "spawned",
        Exited => "exited",
        JoinWait { .. } => "join_wait",
        Woken => "woken",
    }
}

/// Render a [`chrome_trace`] document as JSON text with one trace event
/// per line — still valid `trace_event` JSON, but stable and reviewable
/// as a golden fixture.
pub fn chrome_trace_text(trace: &Json) -> String {
    let events = trace
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("chrome_trace output has a traceEvents array");
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, ev) in events.iter().enumerate() {
        out.push_str(&ev.to_compact());
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::{MemorySink, SinkHandle};
    use crate::{Machine, MachineConfig};
    use std::cell::RefCell;
    use std::rc::Rc;

    const PROGRAM: &str = "
        li    s2, 3
        li    s3, 0
        pidx  p1
loop:   paddi p1, p1, 1
        rsum  s1, p1
        addi  s3, s3, 1
        ceq   f1, s3, s2
        bf    f1, loop
        halt
    ";

    fn traced_run() -> (Vec<TraceEvent>, Timing) {
        let program = asc_asm::assemble(PROGRAM).unwrap();
        let mut m = Machine::with_program(MachineConfig::new(16), &program).unwrap();
        let mem = Rc::new(RefCell::new(MemorySink::new()));
        m.attach_sink(SinkHandle::shared(mem.clone()));
        m.run(100_000).unwrap();
        let timing = m.timing();
        let events = mem.borrow().events().to_vec();
        (events, timing)
    }

    /// Structural validity: what Perfetto / chrome://tracing require of
    /// the JSON object format.
    #[test]
    fn trace_is_structurally_valid_trace_event_json() {
        let (events, timing) = traced_run();
        let trace = chrome_trace(&events, &timing);
        let arr = trace.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!arr.is_empty());
        for ev in arr {
            let ph = ev.get("ph").unwrap().as_str().unwrap();
            assert!(matches!(ph, "M" | "X" | "i" | "C"), "unexpected phase {ph}");
            assert!(ev.get("name").unwrap().as_str().is_some());
            assert!(ev.get("pid").unwrap().as_u64().is_some());
            match ph {
                "X" => {
                    assert!(ev.get("ts").unwrap().as_u64().is_some());
                    assert!(ev.get("dur").unwrap().as_u64().unwrap() >= 1);
                    assert!(ev.get("tid").unwrap().as_u64().is_some());
                }
                "i" => {
                    assert!(ev.get("ts").unwrap().as_u64().is_some());
                    assert_eq!(ev.get("s").unwrap().as_str(), Some("t"));
                }
                "C" => {
                    assert!(ev.get("args").unwrap().get("ops").unwrap().as_u64().is_some());
                }
                _ => {}
            }
        }
        // the text rendering parses back to the same document
        let text = chrome_trace_text(&trace);
        assert_eq!(Json::parse(&text).unwrap(), trace);
    }

    #[test]
    fn issue_slices_and_stage_slices_line_up() {
        let (events, timing) = traced_run();
        let trace = chrome_trace(&events, &timing);
        let arr = trace.get("traceEvents").unwrap().as_arr().unwrap();
        // the rsum issue paints one slice on the thread track...
        let rsum = arr
            .iter()
            .find(|ev| ev.get("name").and_then(Json::as_str).is_some_and(|n| n.starts_with("rsum")))
            .expect("rsum slice on the thread track");
        let ts = rsum.get("ts").unwrap().as_u64().unwrap();
        // ...and its WB stage slice lands retire_offset cycles later on the
        // reduction WB track (stage index b + 1 + r + 1)
        let wb_tid = TID_STAGES + 2 * 32 + (timing.b + 1 + timing.r + 1);
        let wb = arr
            .iter()
            .find(|ev| {
                ev.get("tid").and_then(Json::as_u64) == Some(wb_tid)
                    && ev.get("ts").and_then(Json::as_u64) == Some(ts + timing.b + timing.r + 2)
            })
            .expect("WB stage slice at issue + b + r + 2");
        assert_eq!(wb.get("name").unwrap().as_str(), Some("WB"));
    }

    #[test]
    fn counters_rise_and_fall_back_to_zero() {
        let (events, timing) = traced_run();
        let trace = chrome_trace(&events, &timing);
        let arr = trace.get("traceEvents").unwrap().as_arr().unwrap();
        let sum_samples: Vec<u64> = arr
            .iter()
            .filter(|ev| {
                ev.get("ph").and_then(Json::as_str) == Some("C")
                    && ev.get("name").and_then(Json::as_str) == Some("inflight.sum")
            })
            .map(|ev| ev.get("args").unwrap().get("ops").unwrap().as_u64().unwrap())
            .collect();
        assert!(!sum_samples.is_empty(), "rsum produces sum-tree counters");
        assert!(sum_samples.iter().any(|&v| v > 0));
        assert_eq!(*sum_samples.last().unwrap(), 0, "all operations drain");
    }

    #[test]
    fn deterministic_output() {
        let (events, timing) = traced_run();
        let a = chrome_trace_text(&chrome_trace(&events, &timing));
        let b = chrome_trace_text(&chrome_trace(&events, &timing));
        assert_eq!(a, b);
    }
}
