//! A minimal JSON value type, writer and parser, hand-rolled because the
//! build environment has no crate registry. Only what the observability
//! layer needs: ordered objects (reports diff cleanly), exact 64-bit
//! integers (cycle counters must not round through f64), and a strict
//! parser for reading traces and reports back (`mtasc stats`, round-trip
//! tests).

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer (u64-exact; counters and cycles).
    U64(u64),
    /// Negative integer (i64-exact).
    I64(i64),
    /// Everything else numeric (rates, ratios).
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Member of an object, if this is an object with that key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64 (integral, non-negative only).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as an f64 (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value's object members, in order.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Indented multi-line rendering (2-space indent).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    // Rust's shortest round-trip float formatting always
                    // includes a '.' or exponent for non-integers; force
                    // one for integral values so the type is preserved.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{v:.1}");
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    // JSON has no NaN/Inf; null is the least-bad encoding
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d)
                })
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    let (k, v) = &pairs[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d)
                })
            }
        }
    }

    /// Parse a complete JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure: what was wrong and the byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError { message: msg.into(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // fast path: run of plain bytes
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let c = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match c {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // surrogate pair
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(char::from_u32(code).ok_or_else(|| self.err("bad code point"))?);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| JsonError { message: format!("bad number `{text}`"), offset: start })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_pretty() {
        let v = Json::Obj(vec![
            ("name".into(), Json::str("run")),
            ("cycles".into(), Json::U64(42)),
            ("ipc".into(), Json::F64(0.25)),
            ("tags".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(v.to_compact(), r#"{"name":"run","cycles":42,"ipc":0.25,"tags":[true,null]}"#);
        let pretty = v.to_pretty();
        assert!(pretty.contains("  \"cycles\": 42"));
        assert!(pretty.ends_with("}\n"));
    }

    #[test]
    fn integral_floats_keep_their_type() {
        assert_eq!(Json::F64(2.0).to_compact(), "2.0");
        assert!(matches!(Json::parse("2.0").unwrap(), Json::F64(v) if v == 2.0));
    }

    #[test]
    fn u64_exactness() {
        let v = Json::U64(u64::MAX);
        let back = Json::parse(&v.to_compact()).unwrap();
        assert_eq!(back.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parses_nested_documents() {
        let v = Json::parse(r#" {"a": [1, -2, 3.5], "b": {"c": "x\ny"}} "#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1], Json::I64(-2));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in ["plain", "quote\" slash\\", "ctl\u{1}\n\t", "uni £ 🦀", ""] {
            let rendered = Json::str(s).to_compact();
            assert_eq!(Json::parse(&rendered).unwrap().as_str(), Some(s));
        }
        // \u escapes with surrogate pairs parse too
        let v = Json::parse(r#""\ud83e\udd80 \u00a3""#).unwrap();
        assert_eq!(v.as_str(), Some("🦀 £"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"\\x\"", "nan"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn object_order_is_preserved() {
        let v = Json::parse(r#"{"z":1,"a":2}"#).unwrap();
        let keys: Vec<&str> = v.as_obj().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a"]);
    }
}
