//! Cross-run regression diffing of metric registries.
//!
//! [`diff_registries`] compares the counters and gauges of two runs —
//! two [`RunReport`](super::RunReport)s, two
//! [`Profile`](super::Profile)s (via `Profile::summary_registry`), or any
//! other [`Registry`] pair — into per-metric [`DiffEntry`]s with absolute
//! and relative deltas. [`RegressionCheck`] turns the deltas into a CI
//! gate: each metric carries a *direction* (higher-is-worse for cycles
//! and stalls, higher-is-better for IPC and utilizations, neutral
//! otherwise), and any directed metric moving the wrong way by more than
//! the threshold fails the check (`mtasc stats diff --fail-on-regress`).

use super::json::Json;
use super::metrics::{MetricValue, Registry};

/// Schema tag of the JSON diff document ([`diff_to_json`]); bump on
/// incompatible change.
pub const STATS_DIFF_SCHEMA: &str = "mtasc.stats_diff.v1";

/// Which way a metric is allowed to move without being a regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// An increase is a regression (cycles, stalls).
    HigherIsWorse,
    /// A decrease is a regression (IPC, utilization).
    HigherIsBetter,
    /// No regression semantics (issue counts, geometry).
    Neutral,
}

impl Direction {
    /// Wire label of this direction (`mtasc.stats_diff.v1`).
    pub fn label(self) -> &'static str {
        match self {
            Direction::HigherIsWorse => "higher-is-worse",
            Direction::HigherIsBetter => "higher-is-better",
            Direction::Neutral => "neutral",
        }
    }
}

/// Regression direction of a metric name. The taxonomy is curated: cycle
/// and stall counts regress upward, rates and utilizations regress
/// downward, and everything else (issue mix, queue depths, geometry) is
/// neutral — a change there is information, not a failure. Wall-time and
/// throughput metrics (the benchmark tables lowered by
/// `mtasc stats diff`) carry the obvious directions.
pub fn direction_of(name: &str) -> Direction {
    if name == "cycles"
        || name == "stall_cycles"
        || name == "drain_cycles"
        || name == "last_writeback"
        || name == "thread_switches"
        || name.starts_with("stall.")
        || name.ends_with(".wall_ms")
    {
        Direction::HigherIsWorse
    } else if name == "ipc"
        || name.starts_with("util.")
        || name.starts_with("occupancy.util.")
        || name.ends_with(".instr_per_sec")
    {
        Direction::HigherIsBetter
    } else {
        Direction::Neutral
    }
}

/// One metric's change between run A and run B.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Metric name.
    pub name: String,
    /// Value in run A (the baseline).
    pub a: f64,
    /// Value in run B (the candidate).
    pub b: f64,
    /// `b - a`.
    pub delta: f64,
    /// Relative change in percent (`None` when `a` is 0 and `b` isn't —
    /// growth from zero has no finite percentage).
    pub pct: Option<f64>,
    /// Regression direction of this metric.
    pub direction: Direction,
}

impl DiffEntry {
    /// True if the metric moved at all.
    pub fn changed(&self) -> bool {
        self.a != self.b
    }

    /// The wrong-way relative movement of a directed metric, in percent
    /// (0 for neutral metrics, improvements, and unchanged values;
    /// `f64::INFINITY` for growth of a higher-is-worse metric from 0).
    pub fn regression_pct(&self) -> f64 {
        let worse = match self.direction {
            Direction::HigherIsWorse => self.delta > 0.0,
            Direction::HigherIsBetter => self.delta < 0.0,
            Direction::Neutral => false,
        };
        if !worse {
            return 0.0;
        }
        match self.pct {
            Some(p) => p.abs(),
            None => f64::INFINITY,
        }
    }

    /// Serialize as one entry of a `mtasc.stats_diff.v1` document. The
    /// percentage is elided when growth-from-zero leaves it undefined
    /// (JSON has no infinity).
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("name".into(), Json::str(&self.name)),
            ("a".into(), Json::F64(self.a)),
            ("b".into(), Json::F64(self.b)),
            ("delta".into(), Json::F64(self.delta)),
        ];
        if let Some(p) = self.pct {
            obj.push(("pct".into(), Json::F64(p)));
        }
        obj.push(("direction".into(), Json::str(self.direction.label())));
        Json::Obj(obj)
    }

    /// Render as a fixed-width table line.
    pub fn render(&self) -> String {
        let pct = match self.pct {
            Some(p) => format!("{p:+.1}%"),
            None if self.delta == 0.0 => "0.0%".to_string(),
            None => "new".to_string(),
        };
        let marker = match self.direction {
            _ if self.regression_pct() == 0.0 && self.changed() => "  (improved)",
            _ if self.regression_pct() > 0.0 => "  (REGRESSED)",
            _ => "",
        };
        format!(
            "  {:<34} {:>14} -> {:<14} {:>8}{}",
            self.name,
            num(self.a),
            num(self.b),
            pct,
            marker
        )
    }
}

fn num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

fn numeric(v: &MetricValue) -> Option<f64> {
    match v {
        MetricValue::Counter(c) => Some(*c as f64),
        MetricValue::Gauge(g) => Some(*g),
        MetricValue::Histogram(_) => None, // distributions don't diff to one number
    }
}

/// Diff the counters and gauges of two registries over the union of their
/// names (A's registration order first, then names only in B). Metrics
/// absent from one side default to 0; a metric that does not exist in the
/// baseline at all (as opposed to existing with value 0) has no
/// regression semantics — it is new information, not a wrong-way move —
/// so its direction is forced to [`Direction::Neutral`].
pub fn diff_registries(a: &Registry, b: &Registry) -> Vec<DiffEntry> {
    let mut names: Vec<&str> = Vec::new();
    for (n, v) in a.iter().chain(b.iter()) {
        if numeric(v).is_some() && !names.contains(&n) {
            names.push(n);
        }
    }
    names
        .into_iter()
        .map(|name| {
            let in_a = a.get(name).is_some();
            let va = a.get(name).and_then(numeric).unwrap_or(0.0);
            let vb = b.get(name).and_then(numeric).unwrap_or(0.0);
            let delta = vb - va;
            let pct = if va != 0.0 {
                Some(100.0 * delta / va)
            } else if delta == 0.0 {
                Some(0.0)
            } else {
                None
            };
            DiffEntry {
                name: name.to_string(),
                a: va,
                b: vb,
                delta,
                pct,
                direction: if in_a { direction_of(name) } else { Direction::Neutral },
            }
        })
        .collect()
}

/// A `--fail-on-regress` gate over a diff.
#[derive(Debug, Clone, Copy)]
pub struct RegressionCheck {
    /// Maximum tolerated wrong-way movement, in percent.
    pub threshold_pct: f64,
}

impl RegressionCheck {
    /// The entries whose wrong-way movement exceeds the threshold.
    pub fn regressions<'a>(&self, entries: &'a [DiffEntry]) -> Vec<&'a DiffEntry> {
        entries.iter().filter(|e| e.regression_pct() > self.threshold_pct).collect()
    }
}

/// Render a diff as a `mtasc.stats_diff.v1` JSON document with the
/// regression verdict baked in: `regressed` is true when any directed
/// metric moved the wrong way by more than `threshold_pct`, and
/// `regressions` names the offenders (covering the infinite
/// growth-from-zero case that a per-entry percentage cannot express).
/// `kind` names the diffed artifact kind (`run report`, `profile`, …).
pub fn diff_to_json(kind: &str, entries: &[DiffEntry], threshold_pct: f64) -> Json {
    let gate = RegressionCheck { threshold_pct };
    let regressions = gate.regressions(entries);
    Json::Obj(vec![
        ("schema".into(), Json::str(STATS_DIFF_SCHEMA)),
        ("kind".into(), Json::str(kind)),
        ("threshold_pct".into(), Json::F64(threshold_pct)),
        ("regressed".into(), Json::Bool(!regressions.is_empty())),
        ("regressions".into(), Json::Arr(regressions.iter().map(|e| Json::str(&e.name)).collect())),
        ("entries".into(), Json::Arr(entries.iter().map(DiffEntry::to_json).collect())),
    ])
}

/// Render a diff as text: changed metrics first (sorted by |relative
/// change|, largest first), then a one-line summary. With `all` set,
/// unchanged metrics are listed too.
pub fn render_diff(entries: &[DiffEntry], all: bool) -> String {
    let mut changed: Vec<&DiffEntry> = entries.iter().filter(|e| e.changed()).collect();
    changed.sort_by(|x, y| {
        let kx = x.pct.map_or(f64::INFINITY, f64::abs);
        let ky = y.pct.map_or(f64::INFINITY, f64::abs);
        ky.partial_cmp(&kx).unwrap_or(std::cmp::Ordering::Equal).then(x.name.cmp(&y.name))
    });
    let mut out = String::new();
    if changed.is_empty() {
        out.push_str("no metric changes\n");
    } else {
        out.push_str(&format!("{} metric(s) changed:\n", changed.len()));
        for e in &changed {
            out.push_str(&e.render());
            out.push('\n');
        }
    }
    if all {
        let unchanged: Vec<&DiffEntry> = entries.iter().filter(|e| !e.changed()).collect();
        if !unchanged.is_empty() {
            out.push_str(&format!("{} metric(s) unchanged:\n", unchanged.len()));
            for e in unchanged {
                out.push_str(&e.render());
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(cycles: u64, ipc: f64) -> Registry {
        let mut r = Registry::new();
        r.counter_add("cycles", cycles);
        r.counter_add("stall.data hazard", cycles / 10);
        r.gauge_set("ipc", ipc);
        r.counter_add("issued", 100);
        r
    }

    #[test]
    fn deltas_and_percentages() {
        let d = diff_registries(&reg(100, 0.5), &reg(120, 0.4));
        let cycles = d.iter().find(|e| e.name == "cycles").unwrap();
        assert_eq!((cycles.a, cycles.b, cycles.delta), (100.0, 120.0, 20.0));
        assert_eq!(cycles.pct, Some(20.0));
        assert_eq!(cycles.direction, Direction::HigherIsWorse);
        assert_eq!(cycles.regression_pct(), 20.0);
        let ipc = d.iter().find(|e| e.name == "ipc").unwrap();
        assert_eq!(ipc.direction, Direction::HigherIsBetter);
        assert!((ipc.regression_pct() - 20.0).abs() < 1e-9, "0.5 -> 0.4 is -20%");
        let issued = d.iter().find(|e| e.name == "issued").unwrap();
        assert_eq!(issued.direction, Direction::Neutral);
        assert!(!issued.changed());
        assert_eq!(issued.regression_pct(), 0.0);
    }

    #[test]
    fn improvements_never_regress() {
        let d = diff_registries(&reg(120, 0.4), &reg(100, 0.5));
        assert!(d.iter().all(|e| e.regression_pct() == 0.0));
        let gate = RegressionCheck { threshold_pct: 0.0 };
        assert!(gate.regressions(&d).is_empty());
    }

    #[test]
    fn threshold_gates() {
        let d = diff_registries(&reg(100, 0.5), &reg(104, 0.5));
        assert!(RegressionCheck { threshold_pct: 5.0 }.regressions(&d).is_empty());
        let hits = RegressionCheck { threshold_pct: 2.0 }.regressions(&d);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "cycles");
    }

    #[test]
    fn growth_from_zero_is_infinite_regression() {
        let mut a = Registry::new();
        a.counter_add("stall.join wait", 0);
        let mut b = Registry::new();
        b.counter_add("stall.join wait", 7);
        let d = diff_registries(&a, &b);
        assert_eq!(d[0].pct, None);
        assert_eq!(d[0].regression_pct(), f64::INFINITY);
        assert!(!RegressionCheck { threshold_pct: 1e9 }.regressions(&d).is_empty());
    }

    #[test]
    fn bench_metrics_have_directions() {
        assert_eq!(direction_of("kernel.sort.wall_ms"), Direction::HigherIsWorse);
        assert_eq!(direction_of("pes.4096.wall_ms"), Direction::HigherIsWorse);
        assert_eq!(direction_of("kernel.sort.instr_per_sec"), Direction::HigherIsBetter);
        assert_eq!(direction_of("kernel.sort.cycles"), Direction::Neutral);
        assert_eq!(direction_of("kernel.sort.instructions"), Direction::Neutral);
    }

    #[test]
    fn metrics_new_in_b_never_regress() {
        // a sweep extended to larger sizes: the new points exist only in
        // B, and must not read as infinite wall-time regressions
        let mut a = Registry::new();
        a.gauge_set("pes.4096.wall_ms", 1.0);
        let mut b = Registry::new();
        b.gauge_set("pes.4096.wall_ms", 0.9);
        b.gauge_set("pes.262144.wall_ms", 50.0);
        let d = diff_registries(&a, &b);
        let new_point = d.iter().find(|e| e.name == "pes.262144.wall_ms").unwrap();
        assert_eq!(new_point.direction, Direction::Neutral);
        assert!(RegressionCheck { threshold_pct: 0.0 }.regressions(&d).is_empty());
    }

    #[test]
    fn diff_to_json_carries_the_verdict() {
        let v = diff_to_json("run report", &diff_registries(&reg(100, 0.5), &reg(120, 0.4)), 5.0);
        assert_eq!(v.get("schema").and_then(Json::as_str), Some(STATS_DIFF_SCHEMA));
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("run report"));
        assert_eq!(v.get("regressed"), Some(&Json::Bool(true)));
        let names: Vec<&str> = v
            .get("regressions")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .filter_map(Json::as_str)
            .collect();
        assert!(names.contains(&"cycles") && names.contains(&"ipc"), "{names:?}");
        let entries = v.get("entries").and_then(Json::as_arr).unwrap();
        let cycles = entries.iter().find(|e| e.get("name").unwrap().as_str() == Some("cycles"));
        let cycles = cycles.unwrap();
        assert_eq!(cycles.get("pct").and_then(Json::as_f64), Some(20.0));
        assert_eq!(cycles.get("direction").and_then(Json::as_str), Some("higher-is-worse"));
        // an untripped gate reports regressed=false, and the undefined
        // growth-from-zero percentage is elided, not serialized as inf
        let calm =
            diff_to_json("run report", &diff_registries(&reg(100, 0.5), &reg(100, 0.5)), 0.0);
        assert_eq!(calm.get("regressed"), Some(&Json::Bool(false)));
        let mut a = Registry::new();
        a.counter_add("stall.join wait", 0);
        let mut b = Registry::new();
        b.counter_add("stall.join wait", 7);
        let zero_growth = diff_to_json("run report", &diff_registries(&a, &b), 1e9);
        assert_eq!(zero_growth.get("regressed"), Some(&Json::Bool(true)));
        let entry = &zero_growth.get("entries").and_then(Json::as_arr).unwrap()[0];
        assert!(entry.get("pct").is_none());
        assert!(Json::parse(&zero_growth.to_pretty()).is_ok(), "valid JSON");
    }

    #[test]
    fn union_of_names_and_render() {
        let mut a = Registry::new();
        a.counter_add("only_a", 5);
        let mut b = Registry::new();
        b.counter_add("only_b", 3);
        let d = diff_registries(&a, &b);
        assert_eq!(d.len(), 2);
        assert_eq!((d[0].a, d[0].b), (5.0, 0.0));
        assert_eq!((d[1].a, d[1].b), (0.0, 3.0));
        let text = render_diff(&d, false);
        assert!(text.contains("2 metric(s) changed"));
        let full = render_diff(&diff_registries(&reg(10, 1.0), &reg(10, 1.0)), true);
        assert!(full.contains("no metric changes"));
        assert!(full.contains("unchanged"));
    }
}
