//! Machine-readable run reports.
//!
//! A [`RunReport`] bundles the machine geometry, the legacy [`Stats`]
//! totals, and the full metrics [`Registry`] (including per-thread
//! utilizations, stall-span histograms, network queue depths, and
//! analytic per-stage pipeline occupancy). It serializes to JSON
//! (`mtasc run --report out.json`), parses back, and renders a pretty
//! text summary (`mtasc stats out.json`).

use super::json::{Json, JsonError};
use super::metrics::{MetricValue, Registry};
use crate::config::SchedPolicy;
use crate::machine::Machine;
use crate::stats::{StallReason, Stats};

/// Schema tag written into every report; bump on incompatible change.
pub const REPORT_SCHEMA: &str = "mtasc.run_report.v1";

/// The machine geometry a report was produced on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineMeta {
    /// Number of processing elements.
    pub pes: u64,
    /// Hardware thread contexts.
    pub threads: u64,
    /// Broadcast tree arity.
    pub arity: u64,
    /// Datapath width in bits.
    pub width_bits: u64,
    /// Broadcast latency b = ⌈log_k p⌉.
    pub b: u64,
    /// Reduction latency r = ⌈log₂ p⌉.
    pub r: u64,
    /// Scheduler policy ("fine-grain" or "coarse-grain(penalty)").
    pub sched: String,
    /// Host SIMD dispatch tier the dense-word plane ops ran at
    /// ("scalar", "avx2", or "avx512"). Purely an execution-strategy
    /// record — results are bit-identical across tiers — but wall-time
    /// comparisons between runs are only fair within a tier.
    pub simd: String,
    /// Resolved segment count of the core-affine PE-array sharding
    /// (after the `MTASC_SEGMENTS` override and geometry rounding).
    /// Execution strategy only — results are bit-identical at every
    /// count — but recorded so wall-time comparisons are fair.
    pub segments: u64,
    /// Resolved Rayon dispatch threshold (after `MTASC_PAR_THRESHOLD`).
    pub par_threshold: u64,
}

/// A complete, serializable account of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Machine geometry.
    pub machine: MachineMeta,
    /// The legacy counters, exactly as `Machine::stats` reported them.
    pub totals: Stats,
    /// The full metrics registry ([`Stats::to_registry`] plus the
    /// analytic per-stage occupancy counters added by
    /// [`RunReport::from_machine`]).
    pub metrics: Registry,
    /// Events the attached trace sink discarded (ring eviction or writes
    /// after an I/O error). Non-zero means the recorded trace is lossy.
    pub trace_dropped: u64,
    /// Write errors the attached trace sink absorbed.
    pub trace_errors: u64,
}

impl RunReport {
    /// Snapshot a finished (or in-progress) machine.
    pub fn from_machine(m: &Machine) -> RunReport {
        let cfg = m.config();
        let timing = m.timing();
        let sched = match cfg.sched {
            SchedPolicy::FineGrain => "fine-grain".to_string(),
            SchedPolicy::CoarseGrain { switch_penalty } => {
                format!("coarse-grain({switch_penalty})")
            }
        };
        let machine = MachineMeta {
            pes: cfg.num_pes as u64,
            threads: cfg.threads as u64,
            arity: cfg.broadcast_arity as u64,
            width_bits: cfg.width.bits() as u64,
            b: timing.b,
            r: timing.r,
            sched,
            simd: m.simd_level().label().to_string(),
            segments: cfg.segment_geometry().count() as u64,
            par_threshold: cfg.effective_parallel_threshold() as u64,
        };
        let stats = m.stats().clone();
        let mut metrics = stats.to_registry();
        // Analytic per-stage occupancy: each issued instruction of a class
        // passes through every stage of that class's pipeline exactly once,
        // so stage occupancy is the sum of issue counts over the classes
        // whose pipelines contain the stage.
        for class in [
            asc_isa::InstrClass::Scalar,
            asc_isa::InstrClass::Parallel,
            asc_isa::InstrClass::Reduction,
        ] {
            let issued = stats.issued_by_class[match class {
                asc_isa::InstrClass::Scalar => 0,
                asc_isa::InstrClass::Parallel => 1,
                asc_isa::InstrClass::Reduction => 2,
            }];
            for stage in timing.stage_names(class) {
                metrics.counter_add(&format!("occupancy.stage.{stage}"), issued);
            }
        }
        if stats.cycles > 0 {
            let names: Vec<String> = metrics
                .iter()
                .filter_map(|(n, _)| n.strip_prefix("occupancy.stage.").map(str::to_string))
                .collect();
            for stage in names {
                let n = metrics.counter(&format!("occupancy.stage.{stage}"));
                metrics
                    .gauge_set(&format!("occupancy.util.{stage}"), n as f64 / stats.cycles as f64);
            }
        }
        let (trace_dropped, trace_errors) = match m.sink() {
            Some(sink) => (sink.dropped_events(), sink.write_errors()),
            None => (0, 0),
        };
        RunReport { machine, totals: stats, metrics, trace_dropped, trace_errors }
    }

    /// Serialize to a JSON value.
    pub fn to_json(&self) -> Json {
        let m = &self.machine;
        let machine = Json::Obj(vec![
            ("pes".into(), Json::U64(m.pes)),
            ("threads".into(), Json::U64(m.threads)),
            ("arity".into(), Json::U64(m.arity)),
            ("width_bits".into(), Json::U64(m.width_bits)),
            ("b".into(), Json::U64(m.b)),
            ("r".into(), Json::U64(m.r)),
            ("sched".into(), Json::str(&m.sched)),
            ("simd".into(), Json::str(&m.simd)),
            ("segments".into(), Json::U64(m.segments)),
            ("par_threshold".into(), Json::U64(m.par_threshold)),
        ]);
        let s = &self.totals;
        let totals = Json::Obj(vec![
            ("cycles".into(), Json::U64(s.cycles)),
            ("issued".into(), Json::U64(s.issued)),
            (
                "issued_by_class".into(),
                Json::Obj(vec![
                    ("scalar".into(), Json::U64(s.issued_by_class[0])),
                    ("parallel".into(), Json::U64(s.issued_by_class[1])),
                    ("reduction".into(), Json::U64(s.issued_by_class[2])),
                ]),
            ),
            (
                "issued_by_thread".into(),
                Json::Arr(s.issued_by_thread.iter().map(|&n| Json::U64(n)).collect()),
            ),
            ("ipc".into(), Json::F64(s.ipc())),
            ("stall_cycles".into(), Json::U64(s.stall_cycles)),
            (
                "stalls".into(),
                Json::Obj(
                    StallReason::ALL
                        .iter()
                        .map(|r| (r.label().to_string(), Json::U64(s.stalls_for(*r))))
                        .collect(),
                ),
            ),
            ("last_writeback".into(), Json::U64(s.last_writeback)),
            ("thread_switches".into(), Json::U64(s.thread_switches)),
        ]);
        Json::Obj(vec![
            ("schema".into(), Json::str(REPORT_SCHEMA)),
            ("machine".into(), machine),
            ("totals".into(), totals),
            ("trace_dropped".into(), Json::U64(self.trace_dropped)),
            ("trace_errors".into(), Json::U64(self.trace_errors)),
            ("metrics".into(), self.metrics.to_json()),
        ])
    }

    /// Parse a report from JSON text (as written by
    /// `Json::to_pretty`/`to_compact` of [`RunReport::to_json`]).
    pub fn parse(text: &str) -> Result<RunReport, JsonError> {
        let v = Json::parse(text)?;
        RunReport::from_json(&v)
            .ok_or_else(|| JsonError { message: "not a mtasc run report".into(), offset: 0 })
    }

    /// Reconstruct from the value produced by [`RunReport::to_json`].
    /// Returns `None` on schema mismatch or missing fields.
    pub fn from_json(v: &Json) -> Option<RunReport> {
        if v.get("schema")?.as_str()? != REPORT_SCHEMA {
            return None;
        }
        let m = v.get("machine")?;
        let machine = MachineMeta {
            pes: m.get("pes")?.as_u64()?,
            threads: m.get("threads")?.as_u64()?,
            arity: m.get("arity")?.as_u64()?,
            width_bits: m.get("width_bits")?.as_u64()?,
            b: m.get("b")?.as_u64()?,
            r: m.get("r")?.as_u64()?,
            sched: m.get("sched")?.as_str()?.to_string(),
            // absent in pre-SIMD reports, which all ran scalar
            simd: m.get("simd").and_then(Json::as_str).unwrap_or("scalar").to_string(),
            // absent in pre-segmentation reports, which were monolithic
            segments: m.get("segments").and_then(Json::as_u64).unwrap_or(1),
            par_threshold: m.get("par_threshold").and_then(Json::as_u64).unwrap_or(0),
        };
        let metrics = Registry::from_json(v.get("metrics")?)?;
        let t = v.get("totals")?;
        let by_class = t.get("issued_by_class")?;
        let mut totals = Stats {
            cycles: t.get("cycles")?.as_u64()?,
            issued: t.get("issued")?.as_u64()?,
            issued_by_class: [
                by_class.get("scalar")?.as_u64()?,
                by_class.get("parallel")?.as_u64()?,
                by_class.get("reduction")?.as_u64()?,
            ],
            issued_by_thread: t
                .get("issued_by_thread")?
                .as_arr()?
                .iter()
                .map(Json::as_u64)
                .collect::<Option<Vec<u64>>>()?,
            stall_cycles: t.get("stall_cycles")?.as_u64()?,
            stalls: [0; 10],
            last_writeback: t.get("last_writeback")?.as_u64()?,
            thread_switches: t.get("thread_switches")?.as_u64()?,
            stall_spans: Vec::new(),
            broadcast_depth: Default::default(),
            reduction_depth: Default::default(),
        };
        let stall_obj = t.get("stalls")?;
        for reason in StallReason::ALL {
            totals.stalls[reason.index()] = stall_obj.get(reason.label())?.as_u64()?;
        }
        // The histogram-valued Stats fields live in the registry; pull them
        // back so a parsed report equals the one that was serialized.
        totals.stall_spans = StallReason::ALL
            .iter()
            .map(|r| {
                metrics.histogram(&format!("stall_span.{}", r.label())).cloned().unwrap_or_default()
            })
            .collect();
        if let Some(h) = metrics.histogram("queue_depth.broadcast") {
            totals.broadcast_depth = h.clone();
        }
        if let Some(h) = metrics.histogram("queue_depth.reduction") {
            totals.reduction_depth = h.clone();
        }
        // absent in pre-PR-5 reports; default to "not lossy"
        let trace_dropped = v.get("trace_dropped").and_then(Json::as_u64).unwrap_or(0);
        let trace_errors = v.get("trace_errors").and_then(Json::as_u64).unwrap_or(0);
        Some(RunReport { machine, totals, metrics, trace_dropped, trace_errors })
    }

    /// Render a human-readable summary (the `mtasc stats` view).
    pub fn to_text(&self) -> String {
        let m = &self.machine;
        let s = &self.totals;
        let mut out = format!(
            "machine: {} PEs, {} threads, {}-ary broadcast (b={}, r={}), {}-bit, {}, simd {}, \
             {} segment{}\n",
            m.pes,
            m.threads,
            m.arity,
            m.b,
            m.r,
            m.width_bits,
            m.sched,
            m.simd,
            m.segments,
            if m.segments == 1 { "" } else { "s" }
        );
        out.push_str(&s.report());
        let mut ranked: Vec<(StallReason, u64)> = StallReason::ALL
            .iter()
            .map(|&r| (r, s.stalls_for(r)))
            .filter(|&(_, n)| n > 0)
            .collect();
        ranked.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        if !ranked.is_empty() {
            out.push_str("top stall reasons:\n");
            for (reason, n) in ranked.iter().take(5) {
                let pct = if s.cycles == 0 { 0.0 } else { 100.0 * *n as f64 / s.cycles as f64 };
                let spans = s.stall_spans.get(reason.index());
                let mean = spans.map_or(0.0, |h| h.mean());
                out.push_str(&format!(
                    "  {:<26} {:>8} cycles ({pct:>5.1}%), mean span {mean:.1}\n",
                    reason.label(),
                    n
                ));
            }
        }
        let histo = |out: &mut String, name: &str, title: &str| {
            if let Some(h) = self.metrics.histogram(name) {
                if h.count() > 0 {
                    out.push_str(&format!(
                        "{title}: {} samples, mean {:.2}, max {}\n",
                        h.count(),
                        h.mean(),
                        h.max()
                    ));
                }
            }
        };
        histo(&mut out, "queue_depth.broadcast", "broadcast queue depth");
        histo(&mut out, "queue_depth.reduction", "reduction queue depth");
        let utils: Vec<String> = self
            .metrics
            .iter()
            .filter_map(|(n, v)| match v {
                MetricValue::Gauge(g) => {
                    n.strip_prefix("util.thread.").map(|t| format!("t{t} {:.0}%", 100.0 * g))
                }
                _ => None,
            })
            .collect();
        if !utils.is_empty() {
            out.push_str(&format!("issue-slot utilization: {}\n", utils.join(", ")));
        }
        if self.trace_dropped > 0 || self.trace_errors > 0 {
            out.push_str(&format!(
                "warning: trace is lossy ({} events dropped, {} write errors)\n",
                self.trace_dropped, self.trace_errors
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineConfig;

    const PROGRAM: &str = "
        li    s2, 5
        li    s3, 0
        pidx  p1
loop:   paddi p1, p1, 1
        rsum  s1, p1
        addi  s3, s3, 1
        ceq   f1, s3, s2
        bf    f1, loop
        halt
    ";

    fn run_machine() -> Machine {
        let (m, _) = crate::run_source(MachineConfig::new(16), PROGRAM, 100_000).expect("run");
        m
    }

    #[test]
    fn report_round_trips_and_matches_stats() {
        let m = run_machine();
        let report = RunReport::from_machine(&m);
        assert_eq!(&report.totals, m.stats(), "totals are the legacy Stats verbatim");
        let json = report.to_json().to_pretty();
        let back = RunReport::parse(&json).expect("parse");
        assert_eq!(back, report, "serialize → parse is lossless");
        assert_eq!(back.totals.issued, m.stats().issued);
        assert_eq!(back.metrics.counter("cycles"), m.stats().cycles);
    }

    #[test]
    fn machine_meta_is_captured() {
        let m = run_machine();
        let report = RunReport::from_machine(&m);
        assert_eq!(report.machine.pes, 16);
        assert_eq!(report.machine.b, 2);
        assert_eq!(report.machine.r, 4);
        assert_eq!(report.machine.sched, "fine-grain");
        assert!(
            ["scalar", "avx2", "avx512"].contains(&report.machine.simd.as_str()),
            "{}",
            report.machine.simd
        );
        assert!(report.machine.segments >= 1);
        assert_eq!(report.machine.par_threshold, 4096);
        // pre-SIMD / pre-segmentation reports carry no `simd`, `segments`
        // or `par_threshold` keys; they all ran scalar and monolithic
        let mut v = report.to_json();
        if let Json::Obj(entries) = &mut v {
            for (k, val) in entries.iter_mut() {
                if k == "machine" {
                    if let Json::Obj(machine) = val {
                        machine.retain(|(k, _)| {
                            k != "simd" && k != "segments" && k != "par_threshold"
                        });
                    }
                }
            }
        }
        let old = RunReport::from_json(&v).expect("schema-compatible");
        assert_eq!(old.machine.simd, "scalar");
        assert_eq!(old.machine.segments, 1);
        assert_eq!(old.machine.par_threshold, 0);
    }

    #[test]
    fn stage_occupancy_is_analytic() {
        let m = run_machine();
        let report = RunReport::from_machine(&m);
        let s = m.stats();
        // Every class's pipeline contains EX... except reduction (SR B.. PR R.. WB),
        // so EX occupancy is scalar + parallel issues.
        assert_eq!(
            report.metrics.counter("occupancy.stage.EX"),
            s.issued_by_class[0] + s.issued_by_class[1]
        );
        // All classes pass through SR and WB.
        assert_eq!(report.metrics.counter("occupancy.stage.SR"), s.issued);
        assert_eq!(report.metrics.counter("occupancy.stage.WB"), s.issued);
        let util = report.metrics.gauge("occupancy.util.SR").unwrap();
        assert!((util - s.issued as f64 / s.cycles as f64).abs() < 1e-12);
    }

    #[test]
    fn text_summary_mentions_top_stalls() {
        let m = run_machine();
        let text = RunReport::from_machine(&m).to_text();
        assert!(text.starts_with("machine: 16 PEs"));
        assert!(text.contains("top stall reasons:"));
        assert!(text.contains("issue-slot utilization:"));
    }

    #[test]
    fn trace_lossiness_is_surfaced() {
        use crate::obs::{RingBufferSink, SinkHandle};
        let program = asc_asm::assemble(PROGRAM).unwrap();
        let mut m = Machine::with_program(MachineConfig::new(16), &program).unwrap();
        m.attach_sink(SinkHandle::new(RingBufferSink::new(1)));
        m.run(100_000).unwrap();
        let report = RunReport::from_machine(&m);
        assert!(report.trace_dropped > 0, "1-slot ring must have dropped events");
        assert_eq!(report.trace_errors, 0);
        assert!(report.to_text().contains("warning: trace is lossy"));
        // the lossiness fields survive the JSON round trip
        let back = RunReport::parse(&report.to_json().to_pretty()).unwrap();
        assert_eq!(back.trace_dropped, report.trace_dropped);
        // pre-PR reports without the fields still parse (default 0)
        let mut v = report.to_json();
        if let Json::Obj(entries) = &mut v {
            entries.retain(|(k, _)| k != "trace_dropped" && k != "trace_errors");
        }
        let old = RunReport::from_json(&v).expect("schema-compatible");
        assert_eq!((old.trace_dropped, old.trace_errors), (0, 0));
    }

    #[test]
    fn schema_mismatch_rejected() {
        let m = run_machine();
        let mut v = RunReport::from_machine(&m).to_json();
        if let Json::Obj(entries) = &mut v {
            entries[0].1 = Json::str("mtasc.run_report.v999");
        }
        assert!(RunReport::from_json(&v).is_none());
        assert!(RunReport::parse("{}").is_err());
    }
}
