//! Exact cycle attribution: where every machine cycle of a run went.
//!
//! A [`Profile`] charges each cycle the scheduler consumes to a
//! `(thread, pc, reason)` triple — one cycle per instruction issue
//! (ghost issues of fused blocks included, so fused and unfused runs
//! produce identical profiles) and one per stall cycle, attributed to
//! the program counter of the highest-priority blocked thread. Stall
//! cycles with no blocked thread (`no live thread`) land in a
//! machine-level `unattributed` row, and the pipeline-drain tail (the
//! cycles between the last issue and the last writeback) is closed out
//! at end of run. The books must balance — the **conservation
//! invariant**:
//!
//! ```text
//! Σ rows(issue) + Σ rows(stalls) + Σ unattributed + drain == Stats::cycles
//! ```
//!
//! checked by [`Profile::attributed_cycles`] against
//! [`Profile::total_cycles`] (and by tests/proptests over random
//! programs).
//!
//! Attach with [`crate::Machine::attach_profiler`]; with no profiler
//! attached every hook reduces to one `Option` check and the issue path
//! stays allocation-free (asserted by the `obs_overhead` bench). With a
//! profiler attached the row table is pre-sized at attach/load, so the
//! steady-state record path is allocation-free too.
//!
//! Profiles serialize to `mtasc.profile.v1` JSON ([`Profile::to_json`] /
//! [`Profile::parse`], lossless round-trip), aggregate per instruction,
//! per thread, and per basic block ([`BlockMap`]), and render as the
//! `mtasc profile` hot-spot table ([`Profile::render_table`]).

use asc_isa::{DecodeError, Instr};

use super::json::{Json, JsonError};
use super::metrics::Registry;
use crate::stats::StallReason;

/// Schema tag of the profile JSON document; bump on incompatible change.
pub const PROFILE_SCHEMA: &str = "mtasc.profile.v1";

/// Number of distinct [`StallReason`]s (row array width).
const REASONS: usize = StallReason::ALL.len();

/// Sentinel "no producer known" PC for [`ProfileRow::longest_wait_pc`].
pub const NO_PRODUCER: u32 = u32::MAX;

/// Attribution totals for one `(thread, pc)` site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileRow {
    /// Cycles in which this instruction occupied the issue slot (always
    /// exactly 1 per dynamic execution, ghost issues included).
    pub issue: u64,
    /// Broadcast/reduction network operations this site started
    /// (informational — network traversal overlaps the pipeline and
    /// consumes no issue-slot cycles, so this does not enter the
    /// conservation sum).
    pub net_ops: u64,
    /// Stall cycles charged to this site while it was the
    /// highest-priority blocked instruction, by [`StallReason::index`].
    pub stalls: [u64; REASONS],
    /// Length of the longest single stall span charged here.
    pub longest_wait: u64,
    /// PC of the in-flight producer that longest span waited on
    /// ([`NO_PRODUCER`] when the wait had no register producer — e.g. a
    /// structural or join wait).
    pub longest_wait_pc: u32,
}

impl Default for ProfileRow {
    fn default() -> ProfileRow {
        ProfileRow {
            issue: 0,
            net_ops: 0,
            stalls: [0; REASONS],
            longest_wait: 0,
            longest_wait_pc: NO_PRODUCER,
        }
    }
}

impl ProfileRow {
    /// Total stall cycles charged to this site.
    pub fn stall_cycles(&self) -> u64 {
        self.stalls.iter().sum()
    }

    /// All cycles charged to this site (issue + stalls).
    pub fn cycles(&self) -> u64 {
        self.issue + self.stall_cycles()
    }

    fn is_zero(&self) -> bool {
        self.issue == 0 && self.net_ops == 0 && self.stalls.iter().all(|&n| n == 0)
    }

    fn merge(&mut self, other: &ProfileRow) {
        self.issue += other.issue;
        self.net_ops += other.net_ops;
        for (a, b) in self.stalls.iter_mut().zip(other.stalls) {
            *a += b;
        }
        if other.longest_wait > self.longest_wait {
            self.longest_wait = other.longest_wait;
            self.longest_wait_pc = other.longest_wait_pc;
        }
    }

    /// The reason with the most stall cycles, if any were charged.
    pub fn top_stall(&self) -> Option<(StallReason, u64)> {
        StallReason::ALL
            .into_iter()
            .map(|r| (r, self.stalls[r.index()]))
            .filter(|&(_, n)| n > 0)
            .max_by_key(|&(_, n)| n)
    }
}

/// The cycle-attribution table of one run. See the module docs for the
/// accounting model and the conservation invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    threads: usize,
    prog_len: usize,
    /// `threads * prog_len` rows, thread-major.
    rows: Vec<ProfileRow>,
    /// Stall cycles with no blocked thread to charge (`no live thread`,
    /// or a blocked PC outside the loaded program).
    unattributed: [u64; REASONS],
    /// Pipeline-drain cycles (last issue to last writeback), closed out
    /// when the run finishes.
    drain: u64,
    /// `Stats::cycles` of the finalized run (0 before finalize).
    cycles: u64,
}

impl Profile {
    /// An empty profile shaped for `threads` hardware threads over a
    /// `prog_len`-instruction program.
    pub fn new(threads: usize, prog_len: usize) -> Profile {
        Profile {
            threads,
            prog_len,
            rows: vec![ProfileRow::default(); threads * prog_len],
            unattributed: [0; REASONS],
            drain: 0,
            cycles: 0,
        }
    }

    /// Re-shape for a newly loaded program, discarding all attribution.
    pub(crate) fn reset(&mut self, threads: usize, prog_len: usize) {
        *self = Profile::new(threads, prog_len);
    }

    /// Hardware threads the profile is shaped for.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Instruction-memory length the profile is shaped for.
    pub fn prog_len(&self) -> usize {
        self.prog_len
    }

    #[inline]
    fn index(&self, thread: usize, pc: u32) -> Option<usize> {
        let pc = pc as usize;
        (thread < self.threads && pc < self.prog_len).then(|| thread * self.prog_len + pc)
    }

    /// Charge one issue-slot cycle to `(thread, pc)`.
    #[inline]
    pub(crate) fn record_issue(&mut self, thread: usize, pc: u32) {
        if let Some(i) = self.index(thread, pc) {
            self.rows[i].issue += 1;
        }
    }

    /// Count a network operation started by `(thread, pc)`.
    #[inline]
    pub(crate) fn record_net(&mut self, thread: usize, pc: u32) {
        if let Some(i) = self.index(thread, pc) {
            self.rows[i].net_ops += 1;
        }
    }

    /// Charge a contiguous span of `n` stall cycles to `(thread, pc)`;
    /// `producer_pc` names the in-flight instruction being waited on
    /// (pass [`NO_PRODUCER`] when there is none).
    #[inline]
    pub(crate) fn record_stall(
        &mut self,
        thread: usize,
        pc: u32,
        reason: StallReason,
        n: u64,
        producer_pc: u32,
    ) {
        match self.index(thread, pc) {
            Some(i) => {
                let row = &mut self.rows[i];
                row.stalls[reason.index()] += n;
                if n > row.longest_wait {
                    row.longest_wait = n;
                    row.longest_wait_pc = producer_pc;
                }
            }
            // a waiting PC past the end of the program (e.g. a trailing
            // `tjoin`) has no row; keep the books balanced
            None => self.unattributed[reason.index()] += n,
        }
    }

    /// Charge `n` stall cycles with no blocked thread to attribute.
    #[inline]
    pub(crate) fn record_unattributed(&mut self, reason: StallReason, n: u64) {
        self.unattributed[reason.index()] += n;
    }

    /// Close the books for a finished run: record the run's total cycle
    /// count and charge the remainder (pipeline drain) so the
    /// conservation invariant holds exactly. Idempotent — the drain is
    /// recomputed, not accumulated.
    pub(crate) fn finalize(&mut self, cycles: u64) {
        self.cycles = cycles;
        let live = self.live_cycles();
        debug_assert!(live <= cycles, "attributed {live} cycles of {cycles}");
        self.drain = cycles.saturating_sub(live);
    }

    /// Issue + stall cycles charged so far (everything except drain).
    fn live_cycles(&self) -> u64 {
        self.rows.iter().map(ProfileRow::cycles).sum::<u64>()
            + self.unattributed.iter().sum::<u64>()
    }

    /// Every cycle the profile accounts for. After [`Machine::run`]
    /// (which finalizes the profile) this equals [`Profile::total_cycles`]
    /// bit-exactly — the conservation invariant.
    ///
    /// [`Machine::run`]: crate::Machine::run
    pub fn attributed_cycles(&self) -> u64 {
        self.live_cycles() + self.drain
    }

    /// `Stats::cycles` of the finalized run.
    pub fn total_cycles(&self) -> u64 {
        self.cycles
    }

    /// Pipeline-drain cycles charged at finalize.
    pub fn drain_cycles(&self) -> u64 {
        self.drain
    }

    /// Stall cycles that had no blocked thread, by reason.
    pub fn unattributed_stalls(&self) -> impl Iterator<Item = (StallReason, u64)> + '_ {
        StallReason::ALL.into_iter().map(|r| (r, self.unattributed[r.index()]))
    }

    /// The attribution row of `(thread, pc)` (zero row if out of shape).
    pub fn row(&self, thread: usize, pc: u32) -> ProfileRow {
        self.index(thread, pc).map(|i| self.rows[i]).unwrap_or_default()
    }

    /// Iterate all non-zero rows as `(thread, pc, row)`.
    pub fn rows(&self) -> impl Iterator<Item = (usize, u32, &ProfileRow)> + '_ {
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.is_zero())
            .map(move |(i, r)| ((i / self.prog_len.max(1)), (i % self.prog_len.max(1)) as u32, r))
    }

    /// Per-instruction aggregation: one row per PC, summed over threads.
    pub fn per_pc(&self) -> Vec<ProfileRow> {
        let mut out = vec![ProfileRow::default(); self.prog_len];
        for (_, pc, row) in self.rows() {
            out[pc as usize].merge(row);
        }
        out
    }

    /// Per-thread totals: one row per hardware thread.
    pub fn per_thread(&self) -> Vec<ProfileRow> {
        let mut out = vec![ProfileRow::default(); self.threads];
        for (t, _, row) in self.rows() {
            out[t].merge(row);
        }
        out
    }

    /// Per-basic-block aggregation over `blocks`: `(leader pc, row)`.
    pub fn per_block(&self, blocks: &BlockMap) -> Vec<(u32, ProfileRow)> {
        let mut out: Vec<(u32, ProfileRow)> =
            blocks.leaders().iter().map(|&l| (l, ProfileRow::default())).collect();
        for (_, pc, row) in self.rows() {
            if let Some(b) = blocks.block_of(pc) {
                out[b].1.merge(row);
            }
        }
        out
    }

    /// Total stall cycles per reason, over every row plus unattributed.
    pub fn stall_totals(&self) -> [u64; REASONS] {
        let mut out = self.unattributed;
        for (_, _, row) in self.rows() {
            for (a, b) in out.iter_mut().zip(row.stalls) {
                *a += b;
            }
        }
        out
    }

    /// The top-`k` stall reasons of the run, largest first, each with the
    /// single hottest `(thread, pc)` site for that reason (`None` when
    /// every cycle of the reason was unattributed).
    pub fn top_stalls(&self, k: usize) -> Vec<StallSummary> {
        let totals = self.stall_totals();
        let mut ranked: Vec<StallSummary> = StallReason::ALL
            .into_iter()
            .filter(|r| totals[r.index()] > 0)
            .map(|reason| {
                let hottest = self
                    .rows()
                    .map(|(t, pc, row)| (t, pc, row.stalls[reason.index()]))
                    .filter(|&(_, _, n)| n > 0)
                    .max_by_key(|&(_, _, n)| n)
                    .map(|(thread, pc, cycles)| HotSite { thread, pc, cycles });
                StallSummary { reason, cycles: totals[reason.index()], hottest }
            })
            .collect();
        ranked.sort_by_key(|s| std::cmp::Reverse(s.cycles));
        ranked.truncate(k);
        ranked
    }

    /// The top-`k` instructions by attributed cycles (issue + stalls),
    /// summed over threads, largest first, as `(pc, row)`.
    pub fn hot_pcs(&self, k: usize) -> Vec<(u32, ProfileRow)> {
        let mut ranked: Vec<(u32, ProfileRow)> = self
            .per_pc()
            .into_iter()
            .enumerate()
            .filter(|(_, r)| r.cycles() > 0)
            .map(|(pc, r)| (pc as u32, r))
            .collect();
        ranked.sort_by_key(|&(pc, r)| (std::cmp::Reverse(r.cycles()), pc));
        ranked.truncate(k);
        ranked
    }

    /// Flatten into named counters for [`crate::obs::diff`] — the same
    /// machinery that diffs run reports then diffs profiles.
    pub fn summary_registry(&self) -> Registry {
        let mut reg = Registry::new();
        reg.counter_add("cycles", self.cycles);
        reg.counter_add("drain_cycles", self.drain);
        let per_thread = self.per_thread();
        reg.counter_add("issued", per_thread.iter().map(|r| r.issue).sum());
        reg.counter_add("net_ops", per_thread.iter().map(|r| r.net_ops).sum());
        let totals = self.stall_totals();
        reg.counter_add("stall_cycles", totals.iter().sum());
        for reason in StallReason::ALL {
            reg.counter_add(&format!("stall.{}", reason.label()), totals[reason.index()]);
        }
        for (t, row) in per_thread.iter().enumerate() {
            reg.counter_add(&format!("issued.thread.{t}"), row.issue);
        }
        reg
    }

    // ------------------------------------------------------------- JSON

    /// Serialize as a `mtasc.profile.v1` document. Zero rows are elided;
    /// [`Profile::from_json`] reconstructs them from the shape, so the
    /// round trip is lossless.
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .rows()
            .map(|(t, pc, row)| {
                let mut o = vec![
                    ("thread".into(), Json::U64(t as u64)),
                    ("pc".into(), Json::U64(pc as u64)),
                    ("issue".into(), Json::U64(row.issue)),
                    ("net_ops".into(), Json::U64(row.net_ops)),
                    (
                        "stalls".into(),
                        Json::Obj(
                            StallReason::ALL
                                .into_iter()
                                .filter(|r| row.stalls[r.index()] > 0)
                                .map(|r| (r.label().to_string(), Json::U64(row.stalls[r.index()])))
                                .collect(),
                        ),
                    ),
                ];
                if row.longest_wait > 0 {
                    o.push(("longest_wait".into(), Json::U64(row.longest_wait)));
                    if row.longest_wait_pc != NO_PRODUCER {
                        o.push(("longest_wait_pc".into(), Json::U64(row.longest_wait_pc as u64)));
                    }
                }
                Json::Obj(o)
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::str(PROFILE_SCHEMA)),
            ("threads".into(), Json::U64(self.threads as u64)),
            ("prog_len".into(), Json::U64(self.prog_len as u64)),
            ("cycles".into(), Json::U64(self.cycles)),
            ("drain".into(), Json::U64(self.drain)),
            (
                "unattributed".into(),
                Json::Obj(
                    StallReason::ALL
                        .into_iter()
                        .filter(|r| self.unattributed[r.index()] > 0)
                        .map(|r| (r.label().to_string(), Json::U64(self.unattributed[r.index()])))
                        .collect(),
                ),
            ),
            ("rows".into(), Json::Arr(rows)),
        ])
    }

    /// Reconstruct from the value produced by [`Profile::to_json`].
    /// Returns `None` on schema mismatch or missing fields.
    pub fn from_json(v: &Json) -> Option<Profile> {
        if v.get("schema")?.as_str()? != PROFILE_SCHEMA {
            return None;
        }
        let threads = v.get("threads")?.as_u64()? as usize;
        let prog_len = v.get("prog_len")?.as_u64()? as usize;
        let mut p = Profile::new(threads, prog_len);
        p.cycles = v.get("cycles")?.as_u64()?;
        p.drain = v.get("drain")?.as_u64()?;
        let stalls_of = |o: &Json| -> Option<[u64; REASONS]> {
            let mut out = [0; REASONS];
            for (label, n) in o.as_obj()? {
                let reason = StallReason::ALL.into_iter().find(|r| r.label() == label)?;
                out[reason.index()] = n.as_u64()?;
            }
            Some(out)
        };
        p.unattributed = stalls_of(v.get("unattributed")?)?;
        for row in v.get("rows")?.as_arr()? {
            let thread = row.get("thread")?.as_u64()? as usize;
            let pc = row.get("pc")?.as_u64()? as u32;
            let i = p.index(thread, pc)?;
            p.rows[i] = ProfileRow {
                issue: row.get("issue")?.as_u64()?,
                net_ops: row.get("net_ops")?.as_u64()?,
                stalls: stalls_of(row.get("stalls")?)?,
                longest_wait: row.get("longest_wait").and_then(Json::as_u64).unwrap_or(0),
                longest_wait_pc: row
                    .get("longest_wait_pc")
                    .and_then(Json::as_u64)
                    .map_or(NO_PRODUCER, |p| p as u32),
            };
        }
        Some(p)
    }

    /// Parse a profile from JSON text.
    pub fn parse(text: &str) -> Result<Profile, JsonError> {
        let v = Json::parse(text)?;
        Profile::from_json(&v)
            .ok_or_else(|| JsonError { message: "not a mtasc profile".into(), offset: 0 })
    }

    // -------------------------------------------------------- rendering

    /// Render the `mtasc profile` hot-spot table: the conservation
    /// summary, the top-`top` instructions by attributed cycles, the
    /// hottest basic blocks, and per-thread totals. When the assembled
    /// `program` (and its `source`) are given, instructions are shown
    /// disassembled with source line excerpts via the assembler's span
    /// machinery.
    pub fn render_table(
        &self,
        program: Option<&asc_asm::Program>,
        source: Option<&str>,
        top: usize,
    ) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let issued: u64 = self.per_thread().iter().map(|r| r.issue).sum();
        let stalls: u64 = self.stall_totals().iter().sum();
        let _ = writeln!(
            out,
            "cycles: {}  = issue {} + stall {} + drain {}  (conservation: {})",
            self.cycles,
            issued,
            stalls,
            self.drain,
            if self.attributed_cycles() == self.cycles { "exact" } else { "VIOLATED" }
        );
        let disasm = |pc: u32| -> String {
            match program.and_then(|p| p.instrs.get(pc as usize)) {
                Some(i) => asc_asm::disassemble(i),
                None => format!("pc {pc}"),
            }
        };
        let hot = self.hot_pcs(top);
        if !hot.is_empty() {
            let _ = writeln!(out, "\nhot instructions (issue + attributed stalls):");
            let _ = writeln!(
                out,
                "  {:>5} {:>8} {:>8} {:>8}  {:<28} top stall",
                "pc", "cycles", "issue", "stall", "instruction"
            );
            for (pc, row) in &hot {
                let top_stall = row
                    .top_stall()
                    .map(|(r, n)| {
                        let wait = if row.longest_wait_pc != NO_PRODUCER {
                            format!(" (longest {} on pc {})", row.longest_wait, row.longest_wait_pc)
                        } else {
                            String::new()
                        };
                        format!("{} {}{}", r.label(), n, wait)
                    })
                    .unwrap_or_default();
                let _ = writeln!(
                    out,
                    "  {:>5} {:>8} {:>8} {:>8}  {:<28} {}",
                    pc,
                    row.cycles(),
                    row.issue,
                    row.stall_cycles(),
                    disasm(*pc),
                    top_stall
                );
            }
            // source excerpt for the single hottest instruction
            if let (Some(p), Some(src), Some((pc, _))) = (program, source, hot.first()) {
                if let Some(span) = p.spans.get(*pc as usize) {
                    if let Some(line_text) = src.lines().nth(span.line as usize - 1) {
                        out.push_str("\nhottest site:\n");
                        out.push_str(&asc_asm::source_excerpt(
                            line_text, span.line, span.col, span.len,
                        ));
                    }
                }
            }
        }
        if let Some(p) = program {
            let decoded: Vec<Result<Instr, DecodeError>> =
                p.instrs.iter().map(|i| Ok(*i)).collect();
            let blocks = BlockMap::build(&decoded);
            let mut ranked = self.per_block(&blocks);
            ranked.retain(|(_, r)| r.cycles() > 0);
            ranked.sort_by_key(|&(l, r)| (std::cmp::Reverse(r.cycles()), l));
            ranked.truncate(top);
            if !ranked.is_empty() {
                let _ = writeln!(out, "\nhot basic blocks:");
                for (leader, row) in ranked {
                    let end = blocks.block_end(leader);
                    let _ = writeln!(
                        out,
                        "  pc {leader:>4}..{end:<4} {:>8} cycles (issue {}, stall {})",
                        row.cycles(),
                        row.issue,
                        row.stall_cycles()
                    );
                }
            }
        }
        let threads = self.per_thread();
        if threads.iter().any(|r| r.cycles() > 0) {
            let _ = writeln!(out, "\nper-thread:");
            for (t, row) in threads.iter().enumerate() {
                if row.cycles() > 0 {
                    let _ = writeln!(
                        out,
                        "  t{t}: {:>8} cycles (issue {}, stall {}, net ops {})",
                        row.cycles(),
                        row.issue,
                        row.stall_cycles(),
                        row.net_ops
                    );
                }
            }
        }
        let unattr: u64 = self.unattributed.iter().sum();
        if unattr > 0 {
            let _ = writeln!(out, "\nunattributed stalls (no blocked thread): {unattr} cycles");
        }
        out
    }
}

/// One entry of [`Profile::top_stalls`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallSummary {
    /// The stall reason.
    pub reason: StallReason,
    /// Total cycles lost to it (attributed + unattributed).
    pub cycles: u64,
    /// The single `(thread, pc)` site that paid the most of them.
    pub hottest: Option<HotSite>,
}

/// A `(thread, pc)` attribution site with its cycle count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotSite {
    /// Hardware thread.
    pub thread: usize,
    /// Instruction address.
    pub pc: u32,
    /// Cycles charged there.
    pub cycles: u64,
}

/// Basic-block structure of a program: block leaders are the entry PC,
/// every branch target, and every instruction after a control transfer.
/// Undecodable words are single-instruction blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMap {
    /// Leader PCs, ascending.
    leaders: Vec<u32>,
    /// `block_of[pc]` = index into `leaders`.
    block_of: Vec<u32>,
}

impl BlockMap {
    /// Compute block leaders for a decoded instruction stream.
    pub fn build(imem: &[Result<Instr, DecodeError>]) -> BlockMap {
        let n = imem.len();
        let mut is_leader = vec![false; n];
        if n > 0 {
            is_leader[0] = true;
        }
        for (pc, slot) in imem.iter().enumerate() {
            match slot {
                Ok(i) => {
                    if let Some(t) = branch_target(pc as u32, i) {
                        if (t as usize) < n {
                            is_leader[t as usize] = true;
                        }
                    }
                    if i.is_branch() && pc + 1 < n {
                        is_leader[pc + 1] = true;
                    }
                }
                Err(_) => {
                    // treat as an opaque single-instruction block
                    is_leader[pc] = true;
                    if pc + 1 < n {
                        is_leader[pc + 1] = true;
                    }
                }
            }
        }
        let mut leaders = Vec::new();
        let mut block_of = vec![0u32; n];
        for (pc, &lead) in is_leader.iter().enumerate() {
            if lead {
                leaders.push(pc as u32);
            }
            block_of[pc] = (leaders.len().max(1) - 1) as u32;
        }
        BlockMap { leaders, block_of }
    }

    /// Leader PCs in ascending order.
    pub fn leaders(&self) -> &[u32] {
        &self.leaders
    }

    /// Index of the block containing `pc`.
    pub fn block_of(&self, pc: u32) -> Option<usize> {
        self.block_of.get(pc as usize).map(|&b| b as usize)
    }

    /// Last PC of the block led by `leader` (inclusive).
    pub fn block_end(&self, leader: u32) -> u32 {
        match self.leaders.iter().position(|&l| l == leader) {
            Some(i) if i + 1 < self.leaders.len() => self.leaders[i + 1] - 1,
            _ => (self.block_of.len() as u32).max(1) - 1,
        }
    }
}

/// Static branch target of `i` at `pc`, if it has one (`Jr` is indirect).
fn branch_target(pc: u32, i: &Instr) -> Option<u32> {
    match *i {
        Instr::J { target } | Instr::Jal { target, .. } => Some(target),
        Instr::Bt { off, .. } | Instr::Bf { off, .. } => {
            Some((pc as i64 + 1 + off as i64).max(0) as u32)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MachineConfig, StallReason};

    const PROGRAM: &str = "
        li    s2, 5
        li    s3, 0
        pidx  p1
loop:   paddi p1, p1, 1
        rsum  s1, p1
        add   s4, s4, s1
        addi  s3, s3, 1
        ceq   f1, s3, s2
        bf    f1, loop
        halt
    ";

    fn profiled_run(cfg: MachineConfig) -> (crate::Machine, crate::Stats) {
        let program = asc_asm::assemble(PROGRAM).unwrap();
        let mut m = crate::Machine::with_program(cfg, &program).unwrap();
        m.attach_profiler();
        let stats = m.run(100_000).unwrap();
        (m, stats)
    }

    #[test]
    fn conservation_holds_exactly() {
        let (m, stats) = profiled_run(MachineConfig::new(16));
        let p = m.profile().unwrap();
        assert_eq!(p.attributed_cycles(), stats.cycles);
        assert_eq!(p.total_cycles(), stats.cycles);
        // per-pc issues equal the run's issue count
        let issued: u64 = p.per_pc().iter().map(|r| r.issue).sum();
        assert_eq!(issued, stats.issued);
        // stall totals match the legacy breakdown reason by reason
        let totals = p.stall_totals();
        for reason in StallReason::ALL {
            assert_eq!(totals[reason.index()], stats.stalls_for(reason), "{reason}");
        }
    }

    #[test]
    fn reduction_hazard_lands_on_the_consumer() {
        let (m, _) = profiled_run(MachineConfig::new(16).single_threaded());
        let p = m.profile().unwrap();
        // `addi s3` (pc 5) consumes nothing from the reduction, but `ceq`
        // waits on s3... the b+r stall of `rsum`'s consumer lands on the
        // first instruction blocked after the reduction: pc 5 (addi
        // follows rsum back-to-back; the reduction hazard is charged to
        // whichever pc the scheduler reports blocked). Just assert the
        // hazard was charged inside the loop body with a producer link.
        let totals = p.stall_totals();
        assert!(totals[StallReason::ReductionHazard.index()] > 0);
        let hot = p.top_stalls(3);
        let red = hot.iter().find(|s| s.reason == StallReason::ReductionHazard).unwrap();
        let site = red.hottest.expect("reduction stall is attributed");
        assert_eq!(site.pc, 5, "the add consuming s1 pays the b+r stall");
        let row = p.row(site.thread, site.pc);
        assert_eq!(row.longest_wait_pc, 4, "waits on the rsum at pc 4");
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let (m, _) = profiled_run(MachineConfig::new(16));
        let p = m.profile().unwrap();
        let text = p.to_json().to_pretty();
        let back = Profile::parse(&text).unwrap();
        assert_eq!(&back, p);
        assert!(Profile::parse("{}").is_err());
        let mut v = p.to_json();
        if let Json::Obj(entries) = &mut v {
            entries[0].1 = Json::str("mtasc.profile.v999");
        }
        assert!(Profile::from_json(&v).is_none());
    }

    #[test]
    fn aggregations_are_consistent() {
        let (m, _stats) = profiled_run(MachineConfig::new(16));
        let p = m.profile().unwrap();
        let by_thread: u64 = p.per_thread().iter().map(ProfileRow::cycles).sum();
        let by_pc: u64 = p.per_pc().iter().map(ProfileRow::cycles).sum();
        assert_eq!(by_thread, by_pc);
        let program = asc_asm::assemble(PROGRAM).unwrap();
        let decoded: Vec<_> = program.instrs.iter().map(|i| Ok(*i)).collect();
        let blocks = BlockMap::build(&decoded);
        let by_block: u64 = p.per_block(&blocks).iter().map(|(_, r)| r.cycles()).sum();
        assert_eq!(by_block, by_pc, "every pc belongs to exactly one block");
        let hot = p.hot_pcs(3);
        assert!(hot.len() <= 3 && hot.windows(2).all(|w| w[0].1.cycles() >= w[1].1.cycles()));
    }

    #[test]
    fn block_map_splits_at_branches_and_targets() {
        let program = asc_asm::assemble(PROGRAM).unwrap();
        let decoded: Vec<_> = program.instrs.iter().map(|i| Ok(*i)).collect();
        let blocks = BlockMap::build(&decoded);
        // leaders: entry (0), loop target (3), after bf (9)
        assert_eq!(blocks.leaders(), &[0, 3, 9]);
        assert_eq!(blocks.block_of(4), Some(1));
        assert_eq!(blocks.block_end(3), 8);
        assert_eq!(blocks.block_end(9), 9);
    }

    #[test]
    fn render_table_reports_conservation_and_hot_spots() {
        let (m, _) = profiled_run(MachineConfig::new(16));
        let p = m.profile().unwrap();
        let program = asc_asm::assemble(PROGRAM).unwrap();
        let text = p.render_table(Some(&program), Some(PROGRAM), 5);
        assert!(text.contains("conservation: exact"), "{text}");
        assert!(text.contains("hot instructions"), "{text}");
        assert!(text.contains("hot basic blocks"), "{text}");
        assert!(text.contains("rsum"), "disassembly shown: {text}");
        assert!(text.contains("per-thread:"), "{text}");
    }

    #[test]
    fn out_of_shape_records_stay_balanced() {
        let mut p = Profile::new(1, 2);
        p.record_stall(0, 99, StallReason::WaitJoin, 7, NO_PRODUCER);
        p.record_unattributed(StallReason::NoThread, 3);
        p.record_issue(0, 1);
        p.finalize(12);
        assert_eq!(p.attributed_cycles(), 12);
        assert_eq!(p.drain_cycles(), 1);
        let unattr: u64 = p.unattributed_stalls().map(|(_, n)| n).sum();
        assert_eq!(unattr, 10);
    }
}
