//! Live run telemetry: periodic progress snapshots of an executing
//! machine.
//!
//! A [`ProgressSampler`] attached to a [`crate::Machine`] snapshots the
//! run counters (cycles, issues, the full stall breakdown, live thread
//! count) every N cycles into a bounded ring. The hot path is
//! allocation-free by construction: the ring is pre-sized at attach time
//! and a [`ProgressSample`] is `Copy` (the `obs_overhead` bench asserts
//! this with a counting global allocator). An optional [`ProgressSink`]
//! receives each sample as it is taken — the CLI attaches a
//! [`JsonLinesProgress`] writing `mtasc.progress.v1` JSON-Lines to the
//! run's heartbeat file, flushed per sample so `mtasc runs watch` can
//! tail an in-flight run.

use std::cell::RefCell;
use std::io::{self, Write};
use std::rc::Rc;

use super::json::Json;
use crate::stats::StallReason;

/// Schema tag on every progress line; bump on incompatible change.
pub const PROGRESS_SCHEMA: &str = "mtasc.progress.v1";

/// One point-in-time snapshot of a running machine's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProgressSample {
    /// Machine cycle at which the sample was taken.
    pub cycle: u64,
    /// Instructions issued so far.
    pub issued: u64,
    /// Cycles in which no instruction issued, so far.
    pub stall_cycles: u64,
    /// Stall cycles by reason (indexed by [`StallReason::index`]).
    pub stalls: [u64; 10],
    /// Thread contexts currently allocated (runnable or joining).
    pub live_threads: u32,
    /// Sampling cadence in cycles, stamped by the emitting
    /// [`ProgressSampler`] (0 when the sample was built outside a
    /// sampler). Surfaced on the wire so stream consumers — the `mtasc
    /// serve` SSE endpoint, dashboards — can pace themselves without
    /// out-of-band knowledge of the run's `--progress-every`.
    pub every: u64,
    /// True for the last sample of a run (taken after pipeline drain,
    /// so `cycle` equals the final `Stats::cycles`).
    pub final_sample: bool,
}

impl ProgressSample {
    /// Issued / cycle so far.
    pub fn ipc(&self) -> f64 {
        if self.cycle == 0 {
            0.0
        } else {
            self.issued as f64 / self.cycle as f64
        }
    }

    /// Serialize as one `mtasc.progress.v1` JSON object (zero-valued
    /// stall reasons are elided to keep heartbeat lines short).
    pub fn to_json(&self) -> Json {
        let stalls: Vec<(String, Json)> = StallReason::ALL
            .iter()
            .filter(|r| self.stalls[r.index()] > 0)
            .map(|r| (r.label().to_string(), Json::U64(self.stalls[r.index()])))
            .collect();
        let mut obj = vec![
            ("schema".into(), Json::str(PROGRESS_SCHEMA)),
            ("cycle".into(), Json::U64(self.cycle)),
            ("issued".into(), Json::U64(self.issued)),
            ("ipc".into(), Json::F64(self.ipc())),
            ("stall_cycles".into(), Json::U64(self.stall_cycles)),
            ("stalls".into(), Json::Obj(stalls)),
            ("live_threads".into(), Json::U64(self.live_threads as u64)),
        ];
        if self.every > 0 {
            obj.push(("every".into(), Json::U64(self.every)));
        }
        if self.final_sample {
            obj.push(("final".into(), Json::Bool(true)));
        }
        Json::Obj(obj)
    }

    /// Reconstruct from the value produced by [`ProgressSample::to_json`].
    /// Returns `None` on schema mismatch or missing fields.
    pub fn from_json(v: &Json) -> Option<ProgressSample> {
        if v.get("schema")?.as_str()? != PROGRESS_SCHEMA {
            return None;
        }
        let mut stalls = [0u64; 10];
        let stall_obj = v.get("stalls")?;
        for r in StallReason::ALL {
            if let Some(n) = stall_obj.get(r.label()).and_then(Json::as_u64) {
                stalls[r.index()] = n;
            }
        }
        Some(ProgressSample {
            cycle: v.get("cycle")?.as_u64()?,
            issued: v.get("issued")?.as_u64()?,
            stall_cycles: v.get("stall_cycles")?.as_u64()?,
            stalls,
            live_threads: v.get("live_threads")?.as_u64()? as u32,
            every: v.get("every").and_then(Json::as_u64).unwrap_or(0),
            final_sample: matches!(v.get("final"), Some(Json::Bool(true))),
        })
    }

    /// Parse a `mtasc.progress.v1` JSON-Lines text back into samples
    /// (blank lines skipped). Returns the 1-based line number of the
    /// first malformed line on error.
    pub fn parse_lines(text: &str) -> Result<Vec<ProgressSample>, usize> {
        let mut out = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = Json::parse(line).map_err(|_| i + 1)?;
            out.push(ProgressSample::from_json(&v).ok_or(i + 1)?);
        }
        Ok(out)
    }

    /// One-line human rendering (used by `mtasc runs watch`).
    pub fn render(&self) -> String {
        let mut top: Vec<(StallReason, u64)> = StallReason::ALL
            .iter()
            .map(|&r| (r, self.stalls[r.index()]))
            .filter(|&(_, n)| n > 0)
            .collect();
        top.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        let stalls = match top.first() {
            Some((r, n)) => format!(", top stall {} ({n})", r.label()),
            None => String::new(),
        };
        format!(
            "cycle {:>10}  issued {:>9}  IPC {:.3}  threads {}{}{}",
            self.cycle,
            self.issued,
            self.ipc(),
            self.live_threads,
            stalls,
            if self.final_sample { "  [final]" } else { "" }
        )
    }
}

/// Receives every sample as it is taken (heartbeat writers).
pub trait ProgressSink {
    /// Observe one sample.
    fn on_sample(&mut self, sample: &ProgressSample);

    /// Flush buffered output (called at end of run).
    fn flush_progress(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A shared, clonable handle to a progress sink (mirrors
/// [`super::SinkHandle`] so `Machine` stays `Clone`).
#[derive(Clone)]
pub struct ProgressHandle(Rc<RefCell<dyn ProgressSink>>);

impl std::fmt::Debug for ProgressHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ProgressHandle(..)")
    }
}

impl ProgressHandle {
    /// Wrap a sink for attachment to a sampler.
    pub fn new(sink: impl ProgressSink + 'static) -> ProgressHandle {
        ProgressHandle(Rc::new(RefCell::new(sink)))
    }

    /// Wrap an externally held sink, keeping the caller's handle for
    /// read-back after the run.
    pub fn shared<S: ProgressSink + 'static>(sink: Rc<RefCell<S>>) -> ProgressHandle {
        ProgressHandle(sink)
    }

    /// Deliver one sample.
    pub fn emit(&self, sample: &ProgressSample) {
        self.0.borrow_mut().on_sample(sample);
    }

    /// Flush the underlying sink.
    pub fn flush(&self) -> io::Result<()> {
        self.0.borrow_mut().flush_progress()
    }
}

/// A heartbeat writer: one compact `mtasc.progress.v1` JSON object per
/// sample, flushed immediately so another process can tail the file
/// (`mtasc runs watch`).
#[derive(Debug)]
pub struct JsonLinesProgress<W: Write> {
    writer: W,
    written: u64,
    errors: u64,
}

impl JsonLinesProgress<std::fs::File> {
    /// Create (truncating) a heartbeat file.
    pub fn create(path: &str) -> io::Result<Self> {
        Ok(JsonLinesProgress::new(std::fs::File::create(path)?))
    }
}

impl<W: Write> JsonLinesProgress<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> JsonLinesProgress<W> {
        JsonLinesProgress { writer, written: 0, errors: 0 }
    }

    /// Lines successfully written.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Write errors absorbed (the heartbeat is best-effort; the run is
    /// never failed for a telemetry write error).
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Consume the sink, returning the writer.
    pub fn into_writer(mut self) -> io::Result<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }

    /// The underlying writer (read-back through a shared handle).
    pub fn writer(&self) -> &W {
        &self.writer
    }
}

impl<W: Write> ProgressSink for JsonLinesProgress<W> {
    fn on_sample(&mut self, sample: &ProgressSample) {
        let line = sample.to_json().to_compact();
        let write = self
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            // flushed per sample: heartbeats must be visible to tailing
            // readers while the run is still executing
            .and_then(|()| self.writer.flush());
        match write {
            Ok(()) => self.written += 1,
            Err(_) => self.errors += 1,
        }
    }

    fn flush_progress(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// The sampler a machine holds: cadence, bounded ring, optional sink.
#[derive(Debug, Clone)]
pub struct ProgressSampler {
    /// Sampling cadence in cycles.
    every: u64,
    /// Next cycle at or after which a sample is due.
    next_at: u64,
    /// Pre-sized sample ring (never grows after construction).
    ring: Vec<ProgressSample>,
    /// Index of the oldest retained sample once the ring has wrapped.
    head: usize,
    /// Samples evicted because the ring was full.
    evicted: u64,
    /// Optional heartbeat sink.
    sink: Option<ProgressHandle>,
}

impl ProgressSampler {
    /// A sampler taking a snapshot every `every` cycles (≥ 1), retaining
    /// the most recent `capacity` samples (≥ 1).
    pub fn new(every: u64, capacity: usize) -> ProgressSampler {
        assert!(every >= 1, "sampling cadence must be at least one cycle");
        assert!(capacity >= 1);
        ProgressSampler {
            every,
            next_at: every,
            ring: Vec::with_capacity(capacity),
            head: 0,
            evicted: 0,
            sink: None,
        }
    }

    /// Attach a heartbeat sink receiving every sample.
    pub fn with_sink(mut self, sink: ProgressHandle) -> ProgressSampler {
        self.sink = Some(sink);
        self
    }

    /// Sampling cadence in cycles.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// True when a sample is due at `cycle` (checked by the machine once
    /// per step; one compare on the common path).
    #[inline]
    pub fn due(&self, cycle: u64) -> bool {
        cycle >= self.next_at
    }

    /// Record one sample. Allocation-free: the ring was pre-sized at
    /// construction and the sample is `Copy`. The sampler stamps its
    /// cadence into the sample so every emitted heartbeat self-describes
    /// its pacing.
    pub fn push(&mut self, mut sample: ProgressSample) {
        sample.every = self.every;
        self.next_at = sample.cycle.saturating_add(self.every);
        if self.ring.len() < self.ring.capacity() {
            self.ring.push(sample);
        } else {
            self.ring[self.head] = sample;
            self.head = (self.head + 1) % self.ring.len();
            self.evicted += 1;
        }
        if let Some(sink) = &self.sink {
            sink.emit(&sample);
        }
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &ProgressSample> {
        let (wrapped, recent) = self.ring.split_at(self.head);
        recent.iter().chain(wrapped.iter())
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if nothing was sampled yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Samples evicted because the ring was full.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The most recent sample, if any.
    pub fn latest(&self) -> Option<&ProgressSample> {
        if self.ring.is_empty() {
            None
        } else if self.ring.len() < self.ring.capacity() || self.head == 0 {
            self.ring.last()
        } else {
            Some(&self.ring[self.head - 1])
        }
    }

    /// Flush the attached sink, if any.
    pub fn flush(&self) -> io::Result<()> {
        match &self.sink {
            Some(s) => s.flush(),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(cycle: u64) -> ProgressSample {
        let mut stalls = [0u64; 10];
        stalls[StallReason::ReductionHazard.index()] = cycle / 2;
        ProgressSample {
            cycle,
            issued: cycle / 3,
            stall_cycles: cycle / 2,
            stalls,
            live_threads: 2,
            every: 0,
            final_sample: false,
        }
    }

    #[test]
    fn json_round_trips() {
        for s in [sample(0), sample(100), ProgressSample { final_sample: true, ..sample(7) }] {
            let v = s.to_json();
            assert_eq!(ProgressSample::from_json(&v), Some(s));
        }
        // zero stalls are elided but parse back as zero
        let v = sample(100).to_json();
        assert!(v.get("stalls").unwrap().get("data hazard").is_none());
        assert_eq!(ProgressSample::from_json(&v).unwrap().stalls[0], 0);
    }

    #[test]
    fn parse_lines_round_trips_and_pinpoints_errors() {
        let text = format!(
            "{}\n\n{}\n",
            sample(10).to_json().to_compact(),
            sample(20).to_json().to_compact()
        );
        let back = ProgressSample::parse_lines(&text).unwrap();
        assert_eq!(back, vec![sample(10), sample(20)]);
        assert_eq!(ProgressSample::parse_lines("not json"), Err(1));
        assert_eq!(ProgressSample::parse_lines(&format!("{text}{{}}")), Err(4));
    }

    #[test]
    fn sampler_stamps_its_cadence_onto_the_wire() {
        let mut p = ProgressSampler::new(8, 4);
        p.push(sample(8));
        let stamped = *p.latest().unwrap();
        assert_eq!(stamped.every, 8);
        let v = stamped.to_json();
        assert_eq!(v.get("every").and_then(Json::as_u64), Some(8));
        assert_eq!(ProgressSample::from_json(&v), Some(stamped));
        // samples built outside a sampler elide the field and parse back
        // as cadence-unknown
        let bare = sample(10).to_json();
        assert!(bare.get("every").is_none());
        assert_eq!(ProgressSample::from_json(&bare).unwrap().every, 0);
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_tail() {
        let mut p = ProgressSampler::new(10, 4);
        for i in 1..=10u64 {
            p.push(sample(i * 10));
        }
        assert_eq!(p.len(), 4);
        assert_eq!(p.evicted(), 6);
        let cycles: Vec<u64> = p.samples().map(|s| s.cycle).collect();
        assert_eq!(cycles, vec![70, 80, 90, 100]);
        assert_eq!(p.latest().unwrap().cycle, 100);
    }

    #[test]
    fn cadence_gates_sampling() {
        let mut p = ProgressSampler::new(100, 8);
        assert!(!p.due(99));
        assert!(p.due(100));
        assert!(p.due(250), "fast-forwarded stalls may overshoot the mark");
        p.push(sample(250));
        assert!(!p.due(349));
        assert!(p.due(350));
    }

    #[test]
    fn sink_receives_every_sample() {
        let seen = Rc::new(RefCell::new(Vec::new()));
        struct Collect(Rc<RefCell<Vec<ProgressSample>>>);
        impl ProgressSink for Collect {
            fn on_sample(&mut self, s: &ProgressSample) {
                self.0.borrow_mut().push(*s);
            }
        }
        let mut p =
            ProgressSampler::new(1, 2).with_sink(ProgressHandle::new(Collect(seen.clone())));
        for i in 1..=5u64 {
            p.push(sample(i));
        }
        // the ring holds the tail; the sink saw everything
        assert_eq!(p.len(), 2);
        assert_eq!(seen.borrow().len(), 5);
        p.flush().unwrap();
    }

    #[test]
    fn json_lines_sink_writes_tailable_lines() {
        let mut sink = JsonLinesProgress::new(Vec::new());
        sink.on_sample(&sample(10));
        sink.on_sample(&ProgressSample { final_sample: true, ..sample(20) });
        assert_eq!(sink.written(), 2);
        assert_eq!(sink.errors(), 0);
        let bytes = sink.into_writer().unwrap();
        let back = ProgressSample::parse_lines(&String::from_utf8(bytes).unwrap()).unwrap();
        assert_eq!(back.len(), 2);
        assert!(back[1].final_sample);
    }

    const PROGRAM: &str = "
        li    s2, 5
        li    s3, 0
        pidx  p1
loop:   paddi p1, p1, 1
        rsum  s1, p1
        add   s4, s4, s1
        addi  s3, s3, 1
        ceq   f1, s3, s2
        bf    f1, loop
        halt
    ";

    fn machine() -> crate::Machine {
        let program = asc_asm::assemble(PROGRAM).unwrap();
        crate::Machine::with_program(crate::MachineConfig::new(16), &program).unwrap()
    }

    #[test]
    fn machine_samples_on_cadence_and_at_the_end() {
        let mut m = machine();
        m.attach_progress(ProgressSampler::new(8, 64));
        let stats = m.run(100_000).unwrap();
        let p = m.progress().unwrap();
        assert!(p.len() >= 2, "a {}-cycle run sampled {} times", stats.cycles, p.len());
        let samples: Vec<ProgressSample> = p.samples().copied().collect();
        // monotone cycle stamps at least `every` apart; counters monotone
        for w in samples.windows(2) {
            assert!(w[1].cycle >= w[0].cycle + 8, "{} then {}", w[0].cycle, w[1].cycle);
            assert!(w[1].issued >= w[0].issued);
            assert!(w[1].stall_cycles >= w[0].stall_cycles);
        }
        // the final sample carries the end-of-run totals exactly
        let last = samples.last().unwrap();
        assert!(last.final_sample);
        assert_eq!(last.cycle, stats.cycles);
        assert_eq!(last.issued, stats.issued);
        assert_eq!(last.stall_cycles, stats.stall_cycles);
        // intermediate samples are live (pre-drain)
        assert!(samples[..samples.len() - 1].iter().all(|s| !s.final_sample));
    }

    #[test]
    fn conservation_holds_with_sampler_and_profiler_attached() {
        let mut m = machine();
        m.attach_profiler();
        m.attach_progress(ProgressSampler::new(4, 16));
        let stats = m.run(100_000).unwrap();
        let profile = m.profile().unwrap();
        assert_eq!(profile.attributed_cycles(), stats.cycles, "conservation");
        // and the sampler saw the same world: its ring kept the tail
        assert_eq!(m.progress().unwrap().latest().unwrap().cycle, stats.cycles);
        // a sampler-free clone of the same program runs identically
        let mut bare = machine();
        let bare_stats = bare.run(100_000).unwrap();
        assert_eq!(bare_stats.cycles, stats.cycles, "sampling is observation-only");
        assert_eq!(bare_stats.issued, stats.issued);
    }

    #[test]
    fn machine_streams_heartbeats_to_a_shared_sink() {
        let sink = Rc::new(RefCell::new(JsonLinesProgress::new(Vec::new())));
        let mut m = machine();
        m.attach_progress(
            ProgressSampler::new(8, 4).with_sink(ProgressHandle::shared(sink.clone())),
        );
        let stats = m.run(100_000).unwrap();
        let written = sink.borrow().written();
        assert!(written >= 2);
        let text = String::from_utf8(sink.borrow().writer().clone()).unwrap();
        let samples = ProgressSample::parse_lines(&text).unwrap();
        assert_eq!(samples.len() as u64, written);
        assert_eq!(samples.last().unwrap().cycle, stats.cycles);
        assert!(samples.last().unwrap().final_sample);
    }

    #[test]
    fn take_progress_detaches() {
        let mut m = machine();
        m.attach_progress(ProgressSampler::new(1, 4));
        m.run(100_000).unwrap();
        let p = m.take_progress().unwrap();
        assert!(!p.is_empty());
        assert!(m.progress().is_none());
    }

    #[test]
    fn render_is_single_line() {
        let line = sample(1000).render();
        assert!(line.contains("cycle"));
        assert!(line.contains("reduction hazard"), "{line}");
        assert_eq!(line.lines().count(), 1);
    }
}
