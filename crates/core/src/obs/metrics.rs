//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms. [`crate::Stats`] is a thin struct-of-counters view over
//! the same quantities — [`crate::Stats::to_registry`] produces the
//! registry form, and `Stats::report()` renders *from* that registry, so
//! the two can never disagree.

use super::json::Json;

/// A fixed-bucket histogram over `u64` samples.
///
/// `bounds` are inclusive upper edges; a sample lands in the first bucket
/// whose bound it does not exceed, or in the implicit overflow bucket.
/// `counts.len() == bounds.len() + 1`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// A histogram with the given inclusive upper bucket edges (must be
    /// strictly increasing).
    pub fn new(bounds: &[u64]) -> Histogram {
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must increase");
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        if self.counts.is_empty() {
            // a Default-constructed histogram has no buckets at all; give
            // it a single overflow bucket so it still totals correctly
            self.counts = vec![0];
        }
        let i = self.bounds.partition_point(|&b| b < v);
        self.counts[i] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Iterate `(inclusive_upper_bound, count)`; the final entry is the
    /// overflow bucket with bound `u64::MAX`.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.bounds
            .iter()
            .copied()
            .chain(std::iter::once(u64::MAX))
            .zip(self.counts.iter().copied())
    }

    /// Serialize.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("bounds".into(), Json::Arr(self.bounds.iter().map(|&b| Json::U64(b)).collect())),
            ("counts".into(), Json::Arr(self.counts.iter().map(|&c| Json::U64(c)).collect())),
            ("count".into(), Json::U64(self.count)),
            ("sum".into(), Json::U64(self.sum)),
            ("max".into(), Json::U64(self.max)),
        ])
    }

    /// Deserialize the object produced by [`Histogram::to_json`].
    pub fn from_json(v: &Json) -> Option<Histogram> {
        let arr = |key: &str| -> Option<Vec<u64>> {
            v.get(key)?.as_arr()?.iter().map(Json::as_u64).collect()
        };
        let h = Histogram {
            bounds: arr("bounds")?,
            counts: arr("counts")?,
            count: v.get("count")?.as_u64()?,
            sum: v.get("sum")?.as_u64()?,
            max: v.get("max")?.as_u64()?,
        };
        (h.counts.len() == h.bounds.len() + 1).then_some(h)
    }
}

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic count of occurrences.
    Counter(u64),
    /// Point-in-time or derived value (utilizations, rates).
    Gauge(f64),
    /// Distribution of samples.
    Histogram(Histogram),
}

/// An ordered collection of named metrics. Registration order is
/// preserved so serialized reports diff cleanly run-to-run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    entries: Vec<(String, MetricValue)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn slot(&mut self, name: &str, default: MetricValue) -> &mut MetricValue {
        if let Some(i) = self.entries.iter().position(|(n, _)| n == name) {
            &mut self.entries[i].1
        } else {
            self.entries.push((name.to_string(), default));
            &mut self.entries.last_mut().unwrap().1
        }
    }

    /// Add to a counter (creating it at 0).
    pub fn counter_add(&mut self, name: &str, n: u64) {
        match self.slot(name, MetricValue::Counter(0)) {
            MetricValue::Counter(c) => *c += n,
            other => panic!("metric `{name}` is not a counter: {other:?}"),
        }
    }

    /// Set a gauge (creating it).
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        match self.slot(name, MetricValue::Gauge(0.0)) {
            MetricValue::Gauge(g) => *g = v,
            other => panic!("metric `{name}` is not a gauge: {other:?}"),
        }
    }

    /// Record a sample into a histogram (creating it with `bounds`).
    pub fn histogram_record(&mut self, name: &str, bounds: &[u64], v: u64) {
        match self.slot(name, MetricValue::Histogram(Histogram::new(bounds))) {
            MetricValue::Histogram(h) => h.record(v),
            other => panic!("metric `{name}` is not a histogram: {other:?}"),
        }
    }

    /// Install a pre-built histogram (replacing any existing entry).
    pub fn histogram_set(&mut self, name: &str, h: Histogram) {
        *self.slot(name, MetricValue::Histogram(Histogram::default())) = MetricValue::Histogram(h);
    }

    /// Look up a metric.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// A counter's value (0 if absent — counters that never fired are not
    /// registered).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// A gauge's value, if registered.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// A histogram, if registered.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Iterate `(name, value)` in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialize: an ordered object mapping each name to a typed value
    /// (`{"counter": n}`, `{"gauge": x}` or `{"histogram": {...}}`).
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.entries
                .iter()
                .map(|(name, v)| {
                    let typed = match v {
                        MetricValue::Counter(c) => {
                            Json::Obj(vec![("counter".into(), Json::U64(*c))])
                        }
                        MetricValue::Gauge(g) => Json::Obj(vec![("gauge".into(), Json::F64(*g))]),
                        MetricValue::Histogram(h) => {
                            Json::Obj(vec![("histogram".into(), h.to_json())])
                        }
                    };
                    (name.clone(), typed)
                })
                .collect(),
        )
    }

    /// Deserialize the object produced by [`Registry::to_json`].
    pub fn from_json(v: &Json) -> Option<Registry> {
        let mut reg = Registry::new();
        for (name, typed) in v.as_obj()? {
            let value = if let Some(c) = typed.get("counter") {
                MetricValue::Counter(c.as_u64()?)
            } else if let Some(g) = typed.get("gauge") {
                MetricValue::Gauge(g.as_f64()?)
            } else if let Some(h) = typed.get("histogram") {
                MetricValue::Histogram(Histogram::from_json(h)?)
            } else {
                return None;
            };
            reg.entries.push((name.clone(), value));
        }
        Some(reg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucketing() {
        let mut h = Histogram::new(&[1, 2, 4, 8]);
        for v in [0, 1, 2, 3, 4, 5, 8, 9, 100] {
            h.record(v);
        }
        let buckets: Vec<(u64, u64)> = h.buckets().collect();
        assert_eq!(
            buckets,
            vec![(1, 2), (2, 1), (4, 2), (8, 2), (u64::MAX, 2)],
            "0,1 | 2 | 3,4 | 5,8 | 9,100"
        );
        assert_eq!(h.count(), 9);
        assert_eq!(h.max(), 100);
        assert_eq!(h.sum(), 132);
        assert!((h.mean() - 132.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn default_histogram_still_counts() {
        let mut h = Histogram::default();
        h.record(7);
        assert_eq!(h.count(), 1);
        assert_eq!(h.buckets().collect::<Vec<_>>(), vec![(u64::MAX, 1)]);
    }

    #[test]
    fn histogram_round_trips() {
        let mut h = Histogram::new(&[1, 4, 16]);
        for v in [0, 3, 200] {
            h.record(v);
        }
        assert_eq!(Histogram::from_json(&h.to_json()), Some(h));
    }

    #[test]
    fn registry_basics_and_order() {
        let mut r = Registry::new();
        r.counter_add("b.count", 2);
        r.counter_add("a.count", 1);
        r.counter_add("b.count", 3);
        r.gauge_set("util", 0.5);
        r.histogram_record("depth", &[1, 2], 2);
        assert_eq!(r.counter("b.count"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("util"), Some(0.5));
        assert_eq!(r.histogram("depth").unwrap().count(), 1);
        let names: Vec<&str> = r.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["b.count", "a.count", "util", "depth"], "insertion order");
    }

    #[test]
    fn registry_round_trips() {
        let mut r = Registry::new();
        r.counter_add("cycles", 100);
        r.gauge_set("ipc", 0.25);
        r.histogram_record("spans", &[1, 8], 6);
        let back = Registry::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_confusion_panics() {
        let mut r = Registry::new();
        r.gauge_set("x", 1.0);
        r.counter_add("x", 1);
    }
}
