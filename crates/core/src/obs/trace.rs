//! Trace sinks: where [`TraceEvent`]s go. The machine holds an optional
//! [`SinkHandle`]; with none attached, instrumentation reduces to one
//! `Option` check per emission site (no event is even constructed).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::rc::Rc;

use super::event::TraceEvent;
use super::json::Json;

/// Receives every emitted event, in emission order.
pub trait TraceSink {
    /// Observe one event.
    fn record(&mut self, event: &TraceEvent);

    /// Flush any buffered output (called by `SinkHandle::flush`, and a
    /// good idea at end of run for file-backed sinks).
    fn flush_sink(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Events this sink discarded (ring eviction, post-error writes).
    /// A non-zero value means the recorded trace is lossy.
    fn dropped_events(&self) -> u64 {
        0
    }

    /// Write errors the sink has absorbed (file-backed sinks latch the
    /// first error and silently drop everything after it).
    fn write_errors(&self) -> u64 {
        0
    }
}

/// A bounded in-memory sink: keeps the last `capacity` events and counts
/// what it had to drop. Cheap enough to attach in tests and the kernels
/// harness.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` events (≥ 1).
    pub fn new(capacity: usize) -> RingBufferSink {
        assert!(capacity >= 1);
        RingBufferSink { capacity, events: VecDeque::with_capacity(capacity), dropped: 0 }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, event: &TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(*event);
    }

    fn dropped_events(&self) -> u64 {
        self.dropped
    }
}

/// An unbounded in-memory sink: keeps every event (Chrome-trace export
/// needs the whole stream, not a ring's tail). Prefer [`RingBufferSink`]
/// when only the recent window matters — this one grows with the run.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    events: Vec<TraceEvent>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// All recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consume the sink, returning the events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(*event);
    }
}

/// A sink writing one compact JSON object per line (JSON-Lines) to any
/// `io::Write`. Construct over a `BufWriter<File>` (see
/// [`JsonLinesSink::create`]) for traces on disk, or a `Vec<u8>` in tests.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write> {
    writer: W,
    written: u64,
    dropped: u64,
    error: Option<io::Error>,
}

impl JsonLinesSink<io::BufWriter<std::fs::File>> {
    /// Create (truncating) a JSON-Lines trace file.
    pub fn create(path: &str) -> io::Result<Self> {
        Ok(JsonLinesSink::new(io::BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl<W: Write> JsonLinesSink<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> JsonLinesSink<W> {
        JsonLinesSink { writer, written: 0, dropped: 0, error: None }
    }

    /// Lines successfully written.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The first write error, if any occurred (recording continues past
    /// errors; check this at end of run).
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Consume the sink, returning the writer (for `Vec<u8>`-backed
    /// round-trip tests).
    pub fn into_writer(mut self) -> io::Result<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> TraceSink for JsonLinesSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        if self.error.is_some() {
            self.dropped += 1;
            return;
        }
        let line = event.to_json().to_compact();
        match self.writer.write_all(line.as_bytes()).and_then(|()| self.writer.write_all(b"\n")) {
            Ok(()) => self.written += 1,
            Err(e) => {
                self.error = Some(e);
                self.dropped += 1;
            }
        }
    }

    fn flush_sink(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    fn dropped_events(&self) -> u64 {
        self.dropped
    }

    fn write_errors(&self) -> u64 {
        u64::from(self.error.is_some())
    }
}

/// Parse a JSON-Lines trace back into events (blank lines skipped).
/// Returns the 1-based line number of the first malformed line on error.
pub fn parse_json_lines(text: &str) -> Result<Vec<TraceEvent>, usize> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|_| i + 1)?;
        events.push(TraceEvent::from_json(&v).ok_or(i + 1)?);
    }
    Ok(events)
}

/// A shared, clonable handle to a sink. The machine stores one of these
/// (rather than a `Box<dyn TraceSink>`) so `Machine` stays `Clone`;
/// cloning a machine shares the sink with the clone.
#[derive(Clone)]
pub struct SinkHandle(Rc<RefCell<dyn TraceSink>>);

impl std::fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SinkHandle(..)")
    }
}

impl SinkHandle {
    /// Wrap a sink for attachment to a machine.
    pub fn new(sink: impl TraceSink + 'static) -> SinkHandle {
        SinkHandle(Rc::new(RefCell::new(sink)))
    }

    /// Wrap an externally held sink, keeping the caller's handle for
    /// read-back after the run:
    ///
    /// ```
    /// use std::cell::RefCell;
    /// use std::rc::Rc;
    /// use asc_core::obs::{RingBufferSink, SinkHandle};
    ///
    /// let ring = Rc::new(RefCell::new(RingBufferSink::new(1024)));
    /// let handle = SinkHandle::shared(ring.clone());
    /// // attach `handle` to a machine, run, then inspect ring.borrow()
    /// ```
    pub fn shared<S: TraceSink + 'static>(sink: Rc<RefCell<S>>) -> SinkHandle {
        SinkHandle(sink)
    }

    /// Deliver one event.
    pub fn emit(&self, event: &TraceEvent) {
        self.0.borrow_mut().record(event);
    }

    /// Flush the underlying sink.
    pub fn flush(&self) -> io::Result<()> {
        self.0.borrow_mut().flush_sink()
    }

    /// Events the underlying sink discarded (lossy trace when non-zero).
    pub fn dropped_events(&self) -> u64 {
        self.0.borrow().dropped_events()
    }

    /// Write errors the underlying sink absorbed.
    pub fn write_errors(&self) -> u64 {
        self.0.borrow().write_errors()
    }
}

#[cfg(test)]
mod tests {
    use super::super::event::tests::samples;
    use super::*;

    #[test]
    fn ring_buffer_keeps_the_tail() {
        let mut ring = RingBufferSink::new(4);
        for ev in samples() {
            ring.record(&ev);
        }
        let n = samples().len();
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), (n - 4) as u64);
        let kept: Vec<TraceEvent> = ring.events().copied().collect();
        assert_eq!(kept, samples()[n - 4..]);
    }

    #[test]
    fn json_lines_round_trip_every_variant() {
        let mut sink = JsonLinesSink::new(Vec::new());
        for ev in samples() {
            sink.record(&ev);
        }
        assert_eq!(sink.written(), samples().len() as u64);
        assert!(sink.error().is_none());
        let bytes = sink.into_writer().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(parse_json_lines(&text).unwrap(), samples());
    }

    #[test]
    fn parse_reports_bad_line_numbers() {
        assert_eq!(parse_json_lines("{\"ev\":\"nope\",\"cycle\":1}"), Err(1));
        let good = samples()[0].to_json().to_compact();
        assert_eq!(parse_json_lines(&format!("{good}\n\nnot json")), Err(3));
    }

    #[test]
    fn memory_sink_keeps_everything() {
        let mut sink = MemorySink::new();
        assert!(sink.is_empty());
        for ev in samples() {
            sink.record(&ev);
        }
        assert_eq!(sink.len(), samples().len());
        assert_eq!(sink.dropped_events(), 0);
        assert_eq!(sink.events(), samples());
        assert_eq!(sink.into_events(), samples());
    }

    #[test]
    fn lossiness_is_visible_through_the_handle() {
        let ring = SinkHandle::new(RingBufferSink::new(1));
        for ev in samples() {
            ring.emit(&ev);
        }
        assert_eq!(ring.dropped_events(), samples().len() as u64 - 1);
        assert_eq!(ring.write_errors(), 0);
    }

    /// A writer that fails after `ok` successful writes.
    struct FailingWriter {
        ok: usize,
    }

    impl Write for FailingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.ok == 0 {
                return Err(io::Error::other("disk full"));
            }
            self.ok -= 1;
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn json_lines_counts_post_error_drops() {
        // each record is two writes (line + newline); allow exactly one
        // event through, then fail
        let mut sink = JsonLinesSink::new(FailingWriter { ok: 2 });
        for ev in samples() {
            sink.record(&ev);
        }
        assert_eq!(sink.written(), 1);
        assert!(sink.error().is_some());
        assert_eq!(sink.write_errors(), 1);
        assert_eq!(sink.dropped_events(), samples().len() as u64 - 1);
    }

    #[test]
    fn shared_handles_read_back() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let ring = Rc::new(RefCell::new(RingBufferSink::new(16)));
        let handle = SinkHandle::shared(ring.clone());
        let cloned = handle.clone();
        cloned.emit(&samples()[0]);
        handle.emit(&samples()[1]);
        assert_eq!(ring.borrow().len(), 2);
    }
}
