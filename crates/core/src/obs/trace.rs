//! Trace sinks: where [`TraceEvent`]s go. The machine holds an optional
//! [`SinkHandle`]; with none attached, instrumentation reduces to one
//! `Option` check per emission site (no event is even constructed).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::rc::Rc;

use super::event::TraceEvent;
use super::json::Json;

/// Receives every emitted event, in emission order.
pub trait TraceSink {
    /// Observe one event.
    fn record(&mut self, event: &TraceEvent);

    /// Flush any buffered output (called by `SinkHandle::flush`, and a
    /// good idea at end of run for file-backed sinks).
    fn flush_sink(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A bounded in-memory sink: keeps the last `capacity` events and counts
/// what it had to drop. Cheap enough to attach in tests and the kernels
/// harness.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` events (≥ 1).
    pub fn new(capacity: usize) -> RingBufferSink {
        assert!(capacity >= 1);
        RingBufferSink { capacity, events: VecDeque::with_capacity(capacity), dropped: 0 }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing was recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, event: &TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(*event);
    }
}

/// A sink writing one compact JSON object per line (JSON-Lines) to any
/// `io::Write`. Construct over a `BufWriter<File>` (see
/// [`JsonLinesSink::create`]) for traces on disk, or a `Vec<u8>` in tests.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write> {
    writer: W,
    written: u64,
    error: Option<io::Error>,
}

impl JsonLinesSink<io::BufWriter<std::fs::File>> {
    /// Create (truncating) a JSON-Lines trace file.
    pub fn create(path: &str) -> io::Result<Self> {
        Ok(JsonLinesSink::new(io::BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl<W: Write> JsonLinesSink<W> {
    /// Wrap a writer.
    pub fn new(writer: W) -> JsonLinesSink<W> {
        JsonLinesSink { writer, written: 0, error: None }
    }

    /// Lines successfully written.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The first write error, if any occurred (recording continues past
    /// errors; check this at end of run).
    pub fn error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Consume the sink, returning the writer (for `Vec<u8>`-backed
    /// round-trip tests).
    pub fn into_writer(mut self) -> io::Result<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> TraceSink for JsonLinesSink<W> {
    fn record(&mut self, event: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        let line = event.to_json().to_compact();
        match self.writer.write_all(line.as_bytes()).and_then(|()| self.writer.write_all(b"\n")) {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }

    fn flush_sink(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// Parse a JSON-Lines trace back into events (blank lines skipped).
/// Returns the 1-based line number of the first malformed line on error.
pub fn parse_json_lines(text: &str) -> Result<Vec<TraceEvent>, usize> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = Json::parse(line).map_err(|_| i + 1)?;
        events.push(TraceEvent::from_json(&v).ok_or(i + 1)?);
    }
    Ok(events)
}

/// A shared, clonable handle to a sink. The machine stores one of these
/// (rather than a `Box<dyn TraceSink>`) so `Machine` stays `Clone`;
/// cloning a machine shares the sink with the clone.
#[derive(Clone)]
pub struct SinkHandle(Rc<RefCell<dyn TraceSink>>);

impl std::fmt::Debug for SinkHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SinkHandle(..)")
    }
}

impl SinkHandle {
    /// Wrap a sink for attachment to a machine.
    pub fn new(sink: impl TraceSink + 'static) -> SinkHandle {
        SinkHandle(Rc::new(RefCell::new(sink)))
    }

    /// Wrap an externally held sink, keeping the caller's handle for
    /// read-back after the run:
    ///
    /// ```
    /// use std::cell::RefCell;
    /// use std::rc::Rc;
    /// use asc_core::obs::{RingBufferSink, SinkHandle};
    ///
    /// let ring = Rc::new(RefCell::new(RingBufferSink::new(1024)));
    /// let handle = SinkHandle::shared(ring.clone());
    /// // attach `handle` to a machine, run, then inspect ring.borrow()
    /// ```
    pub fn shared<S: TraceSink + 'static>(sink: Rc<RefCell<S>>) -> SinkHandle {
        SinkHandle(sink)
    }

    /// Deliver one event.
    pub fn emit(&self, event: &TraceEvent) {
        self.0.borrow_mut().record(event);
    }

    /// Flush the underlying sink.
    pub fn flush(&self) -> io::Result<()> {
        self.0.borrow_mut().flush_sink()
    }
}

#[cfg(test)]
mod tests {
    use super::super::event::tests::samples;
    use super::*;

    #[test]
    fn ring_buffer_keeps_the_tail() {
        let mut ring = RingBufferSink::new(4);
        for ev in samples() {
            ring.record(&ev);
        }
        let n = samples().len();
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), (n - 4) as u64);
        let kept: Vec<TraceEvent> = ring.events().copied().collect();
        assert_eq!(kept, samples()[n - 4..]);
    }

    #[test]
    fn json_lines_round_trip_every_variant() {
        let mut sink = JsonLinesSink::new(Vec::new());
        for ev in samples() {
            sink.record(&ev);
        }
        assert_eq!(sink.written(), samples().len() as u64);
        assert!(sink.error().is_none());
        let bytes = sink.into_writer().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(parse_json_lines(&text).unwrap(), samples());
    }

    #[test]
    fn parse_reports_bad_line_numbers() {
        assert_eq!(parse_json_lines("{\"ev\":\"nope\",\"cycle\":1}"), Err(1));
        let good = samples()[0].to_json().to_compact();
        assert_eq!(parse_json_lines(&format!("{good}\n\nnot json")), Err(3));
    }

    #[test]
    fn shared_handles_read_back() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let ring = Rc::new(RefCell::new(RingBufferSink::new(16)));
        let handle = SinkHandle::shared(ring.clone());
        let cloned = handle.clone();
        cloned.emit(&samples()[0]);
        handle.emit(&samples()[1]);
        assert_eq!(ring.borrow().len(), 2);
    }
}
