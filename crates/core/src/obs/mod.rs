//! # Observability: event tracing, metrics, and run reports
//!
//! Three layers, cheapest first:
//!
//! 1. **Structured events** ([`TraceEvent`]) — a typed, cycle-stamped
//!    stream of everything the issue logic decides: instruction issue and
//!    retire, every stall span with its [`crate::StallReason`], network
//!    operations with unit and latency, thread lifecycle transitions, and
//!    sequential-unit (multiplier/divider) busy spans. Events flow into a
//!    [`TraceSink`] — a bounded [`RingBufferSink`] for in-memory
//!    inspection or a [`JsonLinesSink`] for on-disk traces. With no sink
//!    attached, every emission site reduces to one `Option::is_some`
//!    check: the event is never even constructed.
//!
//! 2. **Metrics** ([`Registry`]) — named counters, gauges, and
//!    fixed-bucket [`Histogram`]s. [`crate::Stats`] is refactored on top:
//!    `Stats::to_registry()` exports every legacy counter plus derived
//!    gauges (IPC, per-thread issue-slot utilization) and histograms
//!    (stall spans per reason, broadcast/reduction queue depths), and
//!    `Stats::report()` renders from the registry so text and
//!    machine-readable output cannot disagree.
//!
//! 3. **Run reports** ([`RunReport`]) — one JSON document per run:
//!    machine geometry, the legacy totals verbatim, and the full registry
//!    (including analytic per-stage pipeline occupancy). Written by
//!    `mtasc run --report out.json`, re-read by `mtasc stats`.
//!
//! Attach a sink with [`crate::Machine::attach_sink`]:
//!
//! ```
//! use std::cell::RefCell;
//! use std::rc::Rc;
//! use asc_core::obs::{RingBufferSink, SinkHandle};
//! use asc_core::{Machine, MachineConfig};
//!
//! let mut m = Machine::new(MachineConfig::prototype());
//! let ring = Rc::new(RefCell::new(RingBufferSink::new(4096)));
//! m.attach_sink(SinkHandle::shared(ring.clone()));
//! // ... load and run ...
//! for ev in ring.borrow().events() {
//!     println!("{}", ev.to_json().to_compact());
//! }
//! ```

pub mod chrome;
pub mod diff;
pub mod event;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod progress;
pub mod report;
pub mod trace;

pub use chrome::{chrome_trace, chrome_trace_text};
pub use diff::{
    diff_registries, diff_to_json, render_diff, DiffEntry, Direction, RegressionCheck,
    STATS_DIFF_SCHEMA,
};
pub use event::{SeqUnit, ThreadTransition, TraceEvent};
pub use json::{Json, JsonError};
pub use metrics::{Histogram, MetricValue, Registry};
pub use profile::{BlockMap, HotSite, Profile, ProfileRow, StallSummary, PROFILE_SCHEMA};
pub use progress::{
    JsonLinesProgress, ProgressHandle, ProgressSample, ProgressSampler, ProgressSink,
    PROGRESS_SCHEMA,
};
pub use report::{MachineMeta, RunReport, REPORT_SCHEMA};
pub use trace::{
    parse_json_lines, JsonLinesSink, MemorySink, RingBufferSink, SinkHandle, TraceSink,
};
