//! The thread status table: per-thread PC, run state and earliest next
//! issue cycle. "Each thread's instruction buffer, PC, and state are
//! recorded in a data structure called the thread status table, which is
//! shared between the fetch unit and the decode unit."

/// Run state of one hardware thread context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Context is unallocated.
    Free,
    /// Thread has a PC and may issue when its hazards clear.
    Runnable,
    /// Blocked in `tjoin` until the named thread's context is released.
    WaitingJoin(usize),
}

/// One row of the thread status table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Thread {
    /// Run state.
    pub state: ThreadState,
    /// Program counter (instruction address).
    pub pc: u32,
    /// Earliest cycle at which this thread may issue its next instruction
    /// (branch bubbles, spawn latency, switch penalties).
    pub next_issue: u64,
}

/// The thread status table.
#[derive(Debug, Clone)]
pub struct ThreadTable {
    rows: Vec<Thread>,
    /// Ids of the non-[`ThreadState::Free`] contexts, ascending. Contexts
    /// only enter and leave liveness through [`ThreadTable::alloc`] and
    /// [`ThreadTable::release`], so the list stays exact; the scheduler
    /// and fetch unit scan it instead of every context slot (most of the
    /// 16 slots are free in single-threaded programs, and the scan runs
    /// every simulated cycle).
    live: Vec<usize>,
}

impl ThreadTable {
    /// Create with `n` contexts; thread 0 starts runnable at PC 0, the
    /// rest are free.
    pub fn new(n: usize) -> ThreadTable {
        assert!(n >= 1);
        let mut rows = vec![Thread { state: ThreadState::Free, pc: 0, next_issue: 0 }; n];
        rows[0].state = ThreadState::Runnable;
        ThreadTable { rows, live: vec![0] }
    }

    /// Number of contexts.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Always at least one context.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Borrow one row.
    pub fn get(&self, tid: usize) -> &Thread {
        &self.rows[tid]
    }

    /// Mutably borrow one row.
    pub fn get_mut(&mut self, tid: usize) -> &mut Thread {
        &mut self.rows[tid]
    }

    /// Allocate a free context, set it runnable at `pc`, first issue no
    /// earlier than `ready_at`. Returns the thread id, or `None` if all
    /// contexts are in use. Contexts are allocated lowest-index-first
    /// (deterministic).
    pub fn alloc(&mut self, pc: u32, ready_at: u64) -> Option<usize> {
        let tid = self.rows.iter().position(|t| t.state == ThreadState::Free)?;
        self.rows[tid] = Thread { state: ThreadState::Runnable, pc, next_issue: ready_at };
        let at = self.live.partition_point(|&t| t < tid);
        self.live.insert(at, tid);
        Some(tid)
    }

    /// Release a context (`texit`), waking any joiners. Returns the ids of
    /// the threads that were woken (so the caller can trace the wakeups).
    pub fn release(&mut self, tid: usize) -> Vec<usize> {
        self.rows[tid].state = ThreadState::Free;
        if let Ok(at) = self.live.binary_search(&tid) {
            self.live.remove(at);
        }
        let mut woken = Vec::new();
        for (i, row) in self.rows.iter_mut().enumerate() {
            if row.state == ThreadState::WaitingJoin(tid) {
                row.state = ThreadState::Runnable;
                woken.push(i);
            }
        }
        woken
    }

    /// True if any context is runnable or waiting.
    pub fn any_live(&self) -> bool {
        !self.live.is_empty()
    }

    /// Number of live (runnable or waiting) contexts. The block-fusion
    /// engine only fuses while exactly one thread is live: a second live
    /// thread could interleave issues into the middle of a block and
    /// observe (or disturb) its batched effects out of order.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// True if at least one thread is runnable (not free, not join-blocked).
    pub fn any_runnable(&self) -> bool {
        self.live.iter().any(|&t| self.rows[t].state == ThreadState::Runnable)
    }

    /// Iterate thread ids in rotating-priority order starting at `from`.
    pub fn rotation(&self, from: usize) -> impl Iterator<Item = usize> + '_ {
        let n = self.rows.len();
        (0..n).map(move |i| (from + i) % n)
    }

    /// Iterate the *live* thread ids in rotating-priority order starting
    /// at `from` — the same ids [`ThreadTable::rotation`] would visit,
    /// minus the free slots, which can neither issue nor fetch. This is
    /// what the per-cycle scheduler/fetch scans walk.
    pub fn rotation_live(&self, from: usize) -> impl Iterator<Item = usize> + '_ {
        let split = self.live.partition_point(|&t| t < from);
        self.live[split..].iter().chain(&self.live[..split]).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state() {
        let t = ThreadTable::new(4);
        assert_eq!(t.get(0).state, ThreadState::Runnable);
        assert_eq!(t.get(1).state, ThreadState::Free);
        assert!(t.any_live());
        assert!(t.any_runnable());
    }

    #[test]
    fn alloc_release_cycle() {
        let mut t = ThreadTable::new(3);
        let a = t.alloc(10, 5).unwrap();
        assert_eq!(a, 1);
        assert_eq!(t.get(1).pc, 10);
        assert_eq!(t.get(1).next_issue, 5);
        let b = t.alloc(20, 0).unwrap();
        assert_eq!(b, 2);
        assert_eq!(t.alloc(30, 0), None, "exhausted");
        t.release(1);
        assert_eq!(t.alloc(40, 0), Some(1), "reuses freed context");
    }

    #[test]
    fn join_wakeup() {
        let mut t = ThreadTable::new(3);
        let worker = t.alloc(5, 0).unwrap();
        t.get_mut(0).state = ThreadState::WaitingJoin(worker);
        assert!(!t.get(0).state.eq(&ThreadState::Runnable));
        let woken = t.release(worker);
        assert_eq!(t.get(0).state, ThreadState::Runnable);
        assert_eq!(woken, vec![0], "joiner reported woken");
        assert_eq!(t.release(2), Vec::<usize>::new(), "no joiners, nobody woken");
    }

    #[test]
    fn rotation_order() {
        let t = ThreadTable::new(4);
        let order: Vec<usize> = t.rotation(2).collect();
        assert_eq!(order, vec![2, 3, 0, 1]);
    }
}
