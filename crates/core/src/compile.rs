//! Block compilation: lowering fusible basic blocks to specialized tile
//! kernels.
//!
//! The first generation of the fusion engine interpreted each block
//! instruction per tile — a full `match` over [`Instr`] with operand
//! decoding, immediate sign-extension and mask resolution repeated for
//! every (instruction, tile) pair. This module moves all of that to
//! *plan time*: when [`crate::fusion::FusionPlan::build`] discovers a
//! fusible run, each instruction is lowered once into a [`CompiledOp`] —
//! a flat record holding the resolved register indices, the pre-extended
//! immediate, the mask selector, and a monomorphized kernel function
//! pointer chosen for the machine's [`SimdLevel`]. Executing a block is
//! then a tight loop over the chain: one indirect call per (op, tile),
//! no instruction decode, no per-op dispatch, and the dense ALU/compare
//! work runs through `asc-pe`'s vector kernels (AVX2/AVX-512 when the
//! host has them, scalar otherwise).
//!
//! Semantics are pinned to the instruction-major executor
//! (`Machine::execute_instr`): sources are latched before destinations
//! are written (so a destination may alias its sources and a compare may
//! target its own mask flag), writes to GPR 0 are dropped at compile
//! time, flag writes preserve the bitplane tail invariant, and memory
//! faults report the lowest faulting lane of the earliest faulting
//! instruction while non-faulting lanes still apply. The
//! `fusion_is_bit_identical` differential suite holds this equivalence
//! for every (fusion × SIMD) combination.

use asc_isa::{FlagOp, Instr, Mask, Width, Word};
use asc_pe::simd::{
    select_alu_rr, select_alu_rs, select_cmp_rr, select_cmp_rs, AluRrKernel, AluRsKernel,
    CmpRrKernel, CmpRsKernel, SimdLevel,
};
use asc_pe::{ActiveMask, PeFault, SegmentGeometry, ThreadTiles, TileWindow, TILE_LANES};
use rayon::prelude::*;

/// What a compiled op writes — recorded at compile time so the fusion
/// engine can mark plane commitment (lazy-materialization telemetry)
/// without decoding anything at execution time. `LmemRows` is the
/// per-lane-addressed store, whose rows are only known at runtime; the
/// commit map treats it as "whole local memory" (conservative).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DstKind {
    /// No architectural plane write (nop / scalar slot).
    None,
    /// A GPR plane of the issuing thread.
    Gpr(u8),
    /// A flag bitplane of the issuing thread.
    Flag(u8),
    /// One statically known local-memory row (uniform store).
    LmemRow(i32),
    /// Per-lane-addressed local-memory rows.
    LmemRows,
}

/// Tile executor of one compiled op: applies the op to one 64-PE window
/// and reports the lowest faulting lane, if any.
pub(crate) type TileKernel = fn(&CompiledOp, &mut TileWindow<'_>, &ActiveMask) -> Option<PeFault>;

/// One block instruction, lowered: operands resolved, immediate
/// pre-extended, mask selector latched, and the executor (plus the dense
/// ALU/compare kernel it calls through) bound to monomorphized function
/// pointers. A uniform struct rather than an enum so the tile loop is
/// dispatch-free: `(op.run)(op, ...)` — each executor reads only the
/// fields it was compiled against.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CompiledOp {
    /// The specialized tile executor.
    run: TileKernel,
    /// Dense reg–reg ALU kernel (meaningful only to the ALU executors).
    alu_rr: AluRrKernel,
    /// Dense reg–scalar ALU kernel (broadcast/immediate form).
    alu_rs: AluRsKernel,
    /// Dense reg–reg compare kernel.
    cmp_rr: CmpRrKernel,
    /// Dense reg–scalar compare kernel.
    cmp_rs: CmpRsKernel,
    /// Flag-logic op (flag executor only).
    fop: FlagOp,
    /// Destination register / flag index.
    d: u8,
    /// First source register / flag index.
    a: u8,
    /// Second source register / flag index.
    b: u8,
    /// Resolved broadcast immediate.
    imm: Word,
    /// Local-memory offset, sign-extended once.
    off: i32,
    /// Mask selector, resolved per tile at execution order (an op may
    /// overwrite its own mask flag; later tiles must still see the
    /// pre-write word on *their* tile, which per-tile resolution gives).
    mask: Mask,
    /// The plane this op writes (commit-map telemetry).
    dst: DstKind,
}

/// Placeholder for an unused kernel slot — never invoked.
fn no_alu_rr(_: &mut [Word], _: &[Word], _: &[Word], _: Width, _: u64) {
    unreachable!("ALU rr kernel slot unused by this compiled op");
}
fn no_alu_rs(_: &mut [Word], _: &[Word], _: Word, _: Width, _: u64) {
    unreachable!("ALU rs kernel slot unused by this compiled op");
}
fn no_cmp_rr(_: &[Word], _: &[Word], _: Width) -> u64 {
    unreachable!("compare rr kernel slot unused by this compiled op");
}
fn no_cmp_rs(_: &[Word], _: Word, _: Width) -> u64 {
    unreachable!("compare rs kernel slot unused by this compiled op");
}

/// The do-nothing op: what writes to the zero register compile to.
const NOP: CompiledOp = CompiledOp {
    run: k_nop,
    alu_rr: no_alu_rr,
    alu_rs: no_alu_rs,
    cmp_rr: no_cmp_rr,
    cmp_rs: no_cmp_rs,
    fop: FlagOp::Mov,
    d: 0,
    a: 0,
    b: 0,
    imm: Word::ZERO,
    off: 0,
    mask: Mask::All,
    dst: DstKind::None,
};

impl CompiledOp {
    /// Lower one fusible instruction for a machine at `level`. `w` is the
    /// datapath width (immediates are extended against it here, once).
    pub(crate) fn compile(i: &Instr, w: Width, level: SimdLevel) -> CompiledOp {
        use Instr::*;
        match *i {
            PAlu { op, pd, pa, pb, mask } => {
                if pd.index() == 0 {
                    return NOP;
                }
                CompiledOp {
                    run: k_alu_rr,
                    alu_rr: select_alu_rr(level, op),
                    d: pd.index() as u8,
                    a: pa.index() as u8,
                    b: pb.index() as u8,
                    mask,
                    dst: DstKind::Gpr(pd.index() as u8),
                    ..NOP
                }
            }
            PAluImm { op, pd, pa, imm, mask } => {
                if pd.index() == 0 {
                    return NOP;
                }
                CompiledOp {
                    run: k_alu_rs,
                    alu_rs: select_alu_rs(level, op),
                    d: pd.index() as u8,
                    a: pa.index() as u8,
                    imm: Word::from_i64(imm as i64, w),
                    mask,
                    dst: DstKind::Gpr(pd.index() as u8),
                    ..NOP
                }
            }
            PCmp { op, fd, pa, pb, mask } => CompiledOp {
                run: k_cmp_rr,
                cmp_rr: select_cmp_rr(level, op),
                d: fd.index() as u8,
                a: pa.index() as u8,
                b: pb.index() as u8,
                mask,
                dst: DstKind::Flag(fd.index() as u8),
                ..NOP
            },
            PCmpImm { op, fd, pa, imm, mask } => CompiledOp {
                run: k_cmp_rs,
                cmp_rs: select_cmp_rs(level, op),
                d: fd.index() as u8,
                a: pa.index() as u8,
                imm: Word::from_i64(imm as i64, w),
                mask,
                dst: DstKind::Flag(fd.index() as u8),
                ..NOP
            },
            PFlagOp { op, fd, fa, fb, mask } => CompiledOp {
                run: k_flag_op,
                fop: op,
                d: fd.index() as u8,
                a: fa.index() as u8,
                b: fb.index() as u8,
                mask,
                dst: DstKind::Flag(fd.index() as u8),
                ..NOP
            },
            Plw { pd, base, off, mask } => CompiledOp {
                // Base register 0 is hardwired zero: the whole tile reads
                // one row — compile straight to the contiguous-row kernel.
                run: if base.index() == 0 { k_load_uniform } else { k_load },
                d: pd.index() as u8,
                a: base.index() as u8,
                off: off as i32,
                mask,
                dst: if pd.index() == 0 { DstKind::None } else { DstKind::Gpr(pd.index() as u8) },
                ..NOP
            },
            Psw { ps, base, off, mask } => CompiledOp {
                run: if base.index() == 0 { k_store_uniform } else { k_store },
                a: ps.index() as u8,
                b: base.index() as u8,
                off: off as i32,
                mask,
                dst: if base.index() == 0 {
                    DstKind::LmemRow(off as i32)
                } else {
                    DstKind::LmemRows
                },
                ..NOP
            },
            Pidx { pd, mask } => {
                if pd.index() == 0 {
                    return NOP;
                }
                CompiledOp {
                    run: k_idx,
                    d: pd.index() as u8,
                    mask,
                    dst: DstKind::Gpr(pd.index() as u8),
                    ..NOP
                }
            }
            _ => unreachable!("non-fusible instruction reached the block compiler: {i:?}"),
        }
    }

    /// The plane this op writes (commit-map telemetry).
    pub(crate) fn dst(&self) -> DstKind {
        self.dst
    }

    /// Whether this instruction compiles to a vector (non-scalar) kernel
    /// at `level` — the `simd_ops` statistic.
    pub(crate) fn vectorizes(i: &Instr, level: SimdLevel) -> bool {
        if !level.is_simd() {
            return false;
        }
        match *i {
            Instr::PAlu { op, pd, .. } | Instr::PAluImm { op, pd, .. } => {
                pd.index() != 0 && asc_pe::alu_vectorizes(op)
            }
            Instr::PCmp { .. } | Instr::PCmpImm { .. } => true,
            _ => false,
        }
    }
}

/// The mask word governing an op on this tile, latched before the op's
/// writes (an instruction that overwrites its own mask flag must see the
/// pre-write word). `Mask::All` reads the machine's all-active
/// [`ActiveMask`] (filled once per block) through its tile-scoped view.
#[inline]
fn mask_word(mask: Mask, win: &TileWindow<'_>, all: &ActiveMask) -> u64 {
    match mask {
        Mask::All => all.tile_word(win.tile()),
        Mask::Flag(f) => win.flag_word(f.index()),
    }
}

/// Visit every masked lane in ascending order.
#[inline]
fn for_each_masked(mw: u64, mut f: impl FnMut(usize)) {
    let mut m = mw;
    while m != 0 {
        f(m.trailing_zeros() as usize);
        m &= m - 1;
    }
}

// ------------------------------------------------------------- executors

fn k_nop(_op: &CompiledOp, _win: &mut TileWindow<'_>, _all: &ActiveMask) -> Option<PeFault> {
    None
}

fn k_alu_rr(op: &CompiledOp, win: &mut TileWindow<'_>, all: &ActiveMask) -> Option<PeFault> {
    let mw = mask_word(op.mask, win, all);
    if mw != 0 {
        let w = win.width();
        let (mut a, mut b) = ([Word::ZERO; TILE_LANES], [Word::ZERO; TILE_LANES]);
        let n = win.lanes();
        win.copy_gprs(op.a as usize, &mut a);
        win.copy_gprs(op.b as usize, &mut b);
        (op.alu_rr)(win.gpr_mut(op.d as usize), &a[..n], &b[..n], w, mw);
    }
    None
}

fn k_alu_rs(op: &CompiledOp, win: &mut TileWindow<'_>, all: &ActiveMask) -> Option<PeFault> {
    let mw = mask_word(op.mask, win, all);
    if mw != 0 {
        let w = win.width();
        let mut a = [Word::ZERO; TILE_LANES];
        let n = win.lanes();
        win.copy_gprs(op.a as usize, &mut a);
        (op.alu_rs)(win.gpr_mut(op.d as usize), &a[..n], op.imm, w, mw);
    }
    None
}

fn k_cmp_rr(op: &CompiledOp, win: &mut TileWindow<'_>, all: &ActiveMask) -> Option<PeFault> {
    let mw = mask_word(op.mask, win, all);
    if mw != 0 {
        let w = win.width();
        let (mut a, mut b) = ([Word::ZERO; TILE_LANES], [Word::ZERO; TILE_LANES]);
        let n = win.lanes();
        win.copy_gprs(op.a as usize, &mut a);
        win.copy_gprs(op.b as usize, &mut b);
        // The kernel computes all lanes (compares are side-effect free);
        // inactive lanes are dropped by the merge.
        let res = (op.cmp_rr)(&a[..n], &b[..n], w);
        let old = win.flag_word(op.d as usize);
        win.set_flag_word(op.d as usize, (old & !mw) | (res & mw));
    }
    None
}

fn k_cmp_rs(op: &CompiledOp, win: &mut TileWindow<'_>, all: &ActiveMask) -> Option<PeFault> {
    let mw = mask_word(op.mask, win, all);
    if mw != 0 {
        let w = win.width();
        let mut a = [Word::ZERO; TILE_LANES];
        let n = win.lanes();
        win.copy_gprs(op.a as usize, &mut a);
        let res = (op.cmp_rs)(&a[..n], op.imm, w);
        let old = win.flag_word(op.d as usize);
        win.set_flag_word(op.d as usize, (old & !mw) | (res & mw));
    }
    None
}

fn k_flag_op(op: &CompiledOp, win: &mut TileWindow<'_>, all: &ActiveMask) -> Option<PeFault> {
    let mw = mask_word(op.mask, win, all);
    if mw != 0 {
        let a = win.flag_word(op.a as usize);
        let b = win.flag_word(op.b as usize);
        let old = win.flag_word(op.d as usize);
        win.set_flag_word(op.d as usize, (old & !mw) | (op.fop.apply_word(a, b) & mw));
    }
    None
}

fn k_load(op: &CompiledOp, win: &mut TileWindow<'_>, all: &ActiveMask) -> Option<PeFault> {
    let mw = mask_word(op.mask, win, all);
    if mw == 0 {
        return None;
    }
    let mut bb = [Word::ZERO; TILE_LANES];
    win.copy_gprs(op.a as usize, &mut bb);
    // Load into a lane-indexed latch first: faulting lanes never write
    // the destination, and the destination plane may alias the base.
    let mut vals = [Word::ZERO; TILE_LANES];
    let mut ok = 0u64;
    let mut fault: Option<PeFault> = None;
    for_each_masked(mw, |j| match win.lmem_checked_read(bb[j], op.off, j) {
        Ok(v) => {
            vals[j] = v;
            ok |= 1 << j;
        }
        Err(f) => {
            if fault.is_none() {
                fault = Some(PeFault { pe: win.base() + j, fault: f });
            }
        }
    });
    if op.d != 0 && ok != 0 {
        let dst = win.gpr_mut(op.d as usize);
        for_each_masked(ok, |j| dst[j] = vals[j]);
    }
    fault
}

/// `plw` with the hardwired-zero base: every lane reads the same row, so
/// one bounds check covers the tile and the masked lanes copy from the
/// contiguous row slice. Fault identity matches the per-lane kernel: all
/// active lanes fault together, so the lowest active lane is reported.
fn k_load_uniform(op: &CompiledOp, win: &mut TileWindow<'_>, all: &ActiveMask) -> Option<PeFault> {
    let mw = mask_word(op.mask, win, all);
    if mw == 0 {
        return None;
    }
    match win.lmem_addr(Word::ZERO, op.off, false) {
        Err(f) => Some(PeFault { pe: win.base() + mw.trailing_zeros() as usize, fault: f }),
        Ok(addr) => {
            if op.d != 0 {
                let mut row = [Word::ZERO; TILE_LANES];
                let n = win.lanes();
                row[..n].copy_from_slice(win.lmem_row(addr));
                let full = win.full_word();
                let dst = win.gpr_mut(op.d as usize);
                if mw == full {
                    dst.copy_from_slice(&row[..n]);
                } else {
                    for_each_masked(mw, |j| dst[j] = row[j]);
                }
            }
            None
        }
    }
}

fn k_store(op: &CompiledOp, win: &mut TileWindow<'_>, all: &ActiveMask) -> Option<PeFault> {
    let mw = mask_word(op.mask, win, all);
    if mw == 0 {
        return None;
    }
    let (mut pv, mut bb) = ([Word::ZERO; TILE_LANES], [Word::ZERO; TILE_LANES]);
    win.copy_gprs(op.a as usize, &mut pv);
    win.copy_gprs(op.b as usize, &mut bb);
    let mut fault: Option<PeFault> = None;
    for_each_masked(mw, |j| {
        if let Err(f) = win.lmem_checked_write(bb[j], op.off, j, pv[j]) {
            if fault.is_none() {
                fault = Some(PeFault { pe: win.base() + j, fault: f });
            }
        }
    });
    fault
}

/// `psw` with the hardwired-zero base: one bounds check, then the masked
/// lanes store into the contiguous row slice.
fn k_store_uniform(op: &CompiledOp, win: &mut TileWindow<'_>, all: &ActiveMask) -> Option<PeFault> {
    let mw = mask_word(op.mask, win, all);
    if mw == 0 {
        return None;
    }
    match win.lmem_addr(Word::ZERO, op.off, true) {
        Err(f) => Some(PeFault { pe: win.base() + mw.trailing_zeros() as usize, fault: f }),
        Ok(addr) => {
            let mut src = [Word::ZERO; TILE_LANES];
            let n = win.lanes();
            win.copy_gprs(op.a as usize, &mut src);
            let full = win.full_word();
            let row = win.lmem_row_mut(addr);
            if mw == full {
                row.copy_from_slice(&src[..n]);
            } else {
                for_each_masked(mw, |j| row[j] = src[j]);
            }
            None
        }
    }
}

fn k_idx(op: &CompiledOp, win: &mut TileWindow<'_>, all: &ActiveMask) -> Option<PeFault> {
    let mw = mask_word(op.mask, win, all);
    if mw != 0 {
        let w = win.width();
        let base = win.base();
        let dst = win.gpr_mut(op.d as usize);
        for_each_masked(mw, |j| dst[j] = Word::new((base + j) as u32, w));
    }
    None
}

// ------------------------------------------------------------ execution

/// Run a compiled chain over every tile of `tiles`: the whole chain over
/// one tile before the next. Returns the fault to attribute, chosen as
/// the lowest `(op index, PE)` across the sweep — the same identity the
/// instruction-major executor would have stopped at. In the parallel
/// regime whole core-affine segments are distributed over rayon workers
/// (tiles stay serial inside a segment, so each worker streams a
/// contiguous slice of every touched plane); distinct tiles touch
/// disjoint memory either way.
pub(crate) fn run_chain_tiles(
    chain: &[CompiledOp],
    tiles: &mut ThreadTiles<'_>,
    all: &ActiveMask,
    parallel: bool,
    geo: SegmentGeometry,
) -> Option<(u32, PeFault)> {
    let nt = tiles.num_tiles();
    let raw = tiles.raw();
    let per_tile = |tile: usize| -> Option<(u32, PeFault)> {
        // SAFETY: every invocation names a distinct tile index, and the
        // iteration below visits each tile exactly once.
        let mut win = unsafe { raw.window(tile) };
        let mut first: Option<(u32, PeFault)> = None;
        for (k, op) in chain.iter().enumerate() {
            if let Some(f) = (op.run)(op, &mut win, all) {
                if first.is_none() {
                    first = Some((k as u32, f));
                }
            }
        }
        first
    };
    if parallel {
        debug_assert_eq!(geo.seg_tile_range(geo.count() - 1).end, nt);
        let per_seg = |s: usize| -> Option<(u32, PeFault)> {
            geo.seg_tile_range(s).filter_map(per_tile).min_by_key(|&(k, f)| (k, f.pe))
        };
        // The global minimum over (op index, PE) equals the minimum over
        // the per-segment minima: same fault identity as the flat sweep.
        (0..geo.count()).into_par_iter().filter_map(per_seg).min_by_key(|&(k, f)| (k, f.pe))
    } else {
        (0..nt).filter_map(per_tile).min_by_key(|&(k, f)| (k, f.pe))
    }
}
