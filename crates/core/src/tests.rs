//! End-to-end tests of the timing machine: functional semantics, the three
//! hazard classes of Figure 2 (with exact cycle counts), multithreading
//! behaviour, structural hazards, error paths, and differential testing
//! against the functional emulator.

use asc_asm::assemble;
use asc_isa::{Width, Word};
use asc_pe::{DividerConfig, MultiplierKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::baseline::run_nonpipelined;
use crate::config::MachineConfig;
use crate::emulator::Emulator;
use crate::error::RunError;
use crate::machine::Machine;
use crate::run_source;
use crate::stats::StallReason;

const MAX: u64 = 1_000_000;

fn proto() -> MachineConfig {
    MachineConfig::prototype()
}

fn full() -> MachineConfig {
    MachineConfig::new(16)
}

/// Issue cycles of a straight-line program, via the trace.
fn issue_cycles(cfg: MachineConfig, src: &str) -> Vec<u64> {
    let program = assemble(src).unwrap();
    let mut m = Machine::with_program(cfg, &program).unwrap();
    m.enable_trace();
    m.run(MAX).unwrap();
    m.trace().unwrap().iter().map(|r| r.cycle).collect()
}

// ------------------------------------------------------------ semantics

#[test]
fn scalar_arithmetic_and_memory() {
    let (m, _) = run_source(
        proto(),
        "li   s1, 100
         addi s2, s1, -58
         sw   s2, 5(s0)
         lw   s3, 5(s0)
         add  s4, s3, s3
         halt",
        MAX,
    )
    .unwrap();
    assert_eq!(m.sreg(0, 2).to_i64(Width::W16), 42);
    assert_eq!(m.sreg(0, 4).to_i64(Width::W16), 84);
    assert_eq!(m.smem().read(5).unwrap().to_u32(), 42);
}

#[test]
fn loops_and_flags() {
    // sum 1..=10 with a loop
    let (m, _) = run_source(
        proto(),
        "        li   s1, 0      ; acc
                 li   s2, 1      ; i
                 li   s3, 10
         loop:   add  s1, s1, s2
                 ceq  f1, s2, s3
                 addi s2, s2, 1
                 bf   f1, loop
                 halt",
        MAX,
    )
    .unwrap();
    assert_eq!(m.sreg(0, 1).to_u32(), 55);
}

#[test]
fn jal_and_jr() {
    let (m, _) = run_source(
        proto(),
        "        li   s2, 7
                 jal  s15, double
                 add  s3, s1, s0
                 halt
         double: add  s1, s2, s2
                 jr   s15",
        MAX,
    )
    .unwrap();
    assert_eq!(m.sreg(0, 3).to_u32(), 14);
}

#[test]
fn lui_loads_upper_half() {
    let (m, _) = run_source(proto(), "lui s1, 0xab\nhalt\n", MAX).unwrap();
    // W16: shift by 8
    assert_eq!(m.sreg(0, 1).to_u32(), 0xab00);
}

#[test]
fn associative_find_max_and_index() {
    // the canonical ASC idiom: max value, then which PE holds it
    let program = assemble(
        "        plw    p2, 0(p0)      ; load data
                 pidx   p1
                 rmax   s1, p2         ; global max
                 pceqs  pf1, p2, s1    ; search
                 rcount s3, pf1        ; how many responders?
                 pfirst pf2, pf1       ; pick one
                 rget   s2, p1, pf2    ; its index
                 halt",
    )
    .unwrap();
    let mut m = Machine::with_program(full(), &program).unwrap();
    let data = [3, 17, 9, 42, 42, 1, 0, 5, 42, 7, 2, 2, 30, 41, 40, 39];
    let words: Vec<Word> = data.iter().map(|&v| Word::new(v, Width::W16)).collect();
    m.array_mut().scatter_column(0, &words).unwrap();
    m.run(MAX).unwrap();
    assert_eq!(m.sreg(0, 1).to_u32(), 42);
    assert_eq!(m.sreg(0, 3).to_u32(), 3, "three responders hold 42");
    assert_eq!(m.sreg(0, 2).to_u32(), 3, "first responder is PE 3");
}

#[test]
fn masked_execution_leaves_inactive_pes_alone() {
    let (m, _) = run_source(
        full(),
        "        pidx   p1
                 pclei  pf1, p1, 7
                 pfnot  pf1, pf1       ; upper half responds
                 pli    p2, 1
                 paddi  p2, p2, 10 ?pf1
                 halt",
        MAX,
    )
    .unwrap();
    for pe in 0..16 {
        let expect = if pe > 7 { 11 } else { 1 };
        assert_eq!(m.array().gpr(pe, 0, 2).to_u32(), expect, "PE {pe}");
    }
}

#[test]
fn reduction_identities_on_empty_responder_set() {
    let (m, _) = run_source(
        full(),
        "        pidx  p1
                 pclei pf1, p1, 100
                 pfnot pf1, pf1       ; nobody responds
                 rsum  s1, p1 ?pf1
                 rmax  s2, p1 ?pf1
                 rcount s3, pf1
                 rany  f1, pf1
                 rget  s4, p1, pf1
                 halt",
        MAX,
    )
    .unwrap();
    assert_eq!(m.sreg(0, 1).to_u32(), 0, "empty sum");
    assert_eq!(m.sreg(0, 2).to_i64(Width::W16), Width::W16.smin(), "empty max = identity");
    assert_eq!(m.sreg(0, 3).to_u32(), 0);
    assert!(!m.sflag(0, 1));
    assert_eq!(m.sreg(0, 4).to_u32(), 0, "rget with no responders gives 0");
}

// ------------------------------------------------------------ hazard timing

#[test]
fn broadcast_hazard_is_forwarded_no_stall() {
    // Figure 2 top: SUB then dependent PADD issue back-to-back.
    let cycles = issue_cycles(
        proto(),
        "sub   s1, s2, s3
         padds p1, p2, s1
         halt",
    );
    assert_eq!(cycles[1] - cycles[0], 1, "EX->B1 forwarding");
}

#[test]
fn reduction_hazard_stalls_b_plus_r() {
    // Figure 2 middle: RMAX then a scalar consumer.
    let cfg = proto();
    let t = cfg.timing();
    let cycles = issue_cycles(
        cfg,
        "rmax s1, p2
         sub  s3, s1, s1
         halt",
    );
    assert_eq!(t.b + t.r, 6);
    assert_eq!(
        cycles[1] - cycles[0],
        t.b + t.r + 1,
        "dependent scalar stalls exactly b+r cycles beyond back-to-back"
    );
}

#[test]
fn broadcast_reduction_hazard_stalls_b_plus_r() {
    // Figure 2 bottom: RMAX then a dependent parallel instruction.
    let cfg = proto();
    let t = cfg.timing();
    let cycles = issue_cycles(
        cfg,
        "rmax  s1, p2
         padds p1, p2, s1
         halt",
    );
    assert_eq!(cycles[1] - cycles[0], t.b + t.r + 1);
}

#[test]
fn independent_instruction_after_reduction_does_not_stall() {
    let cycles = issue_cycles(
        proto(),
        "rmax s1, p2
         add  s3, s4, s5
         halt",
    );
    assert_eq!(cycles[1] - cycles[0], 1);
}

#[test]
fn reduction_initiation_rate_is_one_per_cycle() {
    // independent reductions: the pipelined network accepts one per cycle
    let cycles = issue_cycles(
        proto(),
        "rsum s1, p1
         rmax s2, p1
         rmin s3, p1
         ror  s4, p1
         halt",
    );
    assert_eq!(&cycles[..4], &[0, 1, 2, 3]);
}

#[test]
fn load_use_bubble() {
    let cycles = issue_cycles(
        proto(),
        "lw  s1, 0(s0)
         add s2, s1, s1
         halt",
    );
    assert_eq!(cycles[1] - cycles[0], 2, "one load-delay bubble");
}

#[test]
fn parallel_chain_is_fully_forwarded() {
    let cycles = issue_cycles(
        proto(),
        "paddi p1, p1, 1
         paddi p2, p1, 2
         rsum  s1, p2
         halt",
    );
    assert_eq!(&cycles[..3], &[0, 1, 2], "PE-local and network-input forwarding");
}

#[test]
fn stall_accounting_attributes_reduction_hazards() {
    let cfg = proto();
    let t = cfg.timing();
    let (_, stats) = run_source(
        cfg,
        "rmax s1, p2
         sub  s3, s1, s1
         halt",
        MAX,
    )
    .unwrap();
    assert_eq!(stats.stalls_for(StallReason::ReductionHazard), t.b + t.r);
    assert_eq!(stats.stalls_for(StallReason::BroadcastHazard), 0);
}

#[test]
fn hazard_latency_grows_with_pe_count() {
    // §5: "the latency of a reduction operation depends on the number of
    // PEs and can vary from a few cycles for a small machine to tens of
    // cycles for a larger one"
    let mut last = 0;
    for p in [4usize, 64, 1024, 16384] {
        let cfg = MachineConfig::new(p).single_threaded();
        let t = cfg.timing();
        let cycles = issue_cycles(
            cfg,
            "rmax s1, p2
             sub  s3, s1, s1
             halt",
        );
        let gap = cycles[1] - cycles[0];
        assert_eq!(gap, t.b + t.r + 1);
        assert!(gap > last);
        last = gap;
    }
}

#[test]
fn waw_interlock_preserves_write_order() {
    let cfg = proto();
    let (m, _) = run_source(
        cfg,
        "rmax s1, p2
         li   s1, 5
         halt",
        MAX,
    )
    .unwrap();
    // program order must win
    assert_eq!(m.sreg(0, 1).to_u32(), 5);
    // and the younger write was delayed (data-hazard stall recorded)
    let cycles = issue_cycles(
        cfg,
        "rmax s1, p2
         li   s1, 5
         halt",
    );
    assert!(cycles[1] - cycles[0] > 1, "WAW interlock must delay the LI");
}

#[test]
fn branch_bubble_costs_one_cycle() {
    let cycles = issue_cycles(
        proto(),
        "j    next
         nop
         next: halt",
    );
    // j at 0, halt at 2
    assert_eq!(cycles[1] - cycles[0], 2, "taken branch costs one bubble");
}

// ------------------------------------------------------------ multithreading

/// A reduction-dependency-chain worker: the worst case for a single
/// thread, the best case for fine-grain MT.
const MT_PROGRAM: &str = "
main:    li   s1, worker
         li   s2, 0          ; i
         li   s3, 7          ; workers
spawnl:  ceq  f1, s2, s3
         bt   f1, joins
         tspawn s4, s1
         sw   s4, 16(s2)
         addi s2, s2, 1
         j    spawnl
joins:   li   s2, 0
joinl:   ceq  f1, s2, s3
         bt   f1, done
         lw   s4, 16(s2)
         tjoin s4
         addi s2, s2, 1
         j    joinl
done:    halt
worker:  li   s6, 20         ; iterations
         pidx p1
wloop:   padds p2, p1, s7    ; broadcast-reduction hazard on s7
         rsum s7, p2
         addi s6, s6, -1
         ceqi f1, s6, 0
         bf   f1, wloop
         texit
";

/// The same total work on one thread (7 x 20 iterations, no spawning).
const ST_PROGRAM: &str = "
main:    li   s6, 140
         pidx p1
wloop:   padds p2, p1, s7
         rsum s7, p2
         addi s6, s6, -1
         ceqi f1, s6, 0
         bf   f1, wloop
         halt
";

#[test]
fn multithreading_hides_reduction_stalls() {
    let (_, st) = run_source(full().single_threaded(), ST_PROGRAM, MAX).unwrap();
    let (_, mt) = run_source(full(), MT_PROGRAM, MAX).unwrap();
    assert!(
        mt.cycles < st.cycles,
        "7-way MT should beat 1 thread on the same work: {} vs {}",
        mt.cycles,
        st.cycles
    );
    assert!(mt.ipc() > 1.5 * st.ipc(), "MT IPC {} should far exceed ST IPC {}", mt.ipc(), st.ipc());
    assert!(
        mt.stalls_for(StallReason::BroadcastReductionHazard)
            < st.stalls_for(StallReason::BroadcastReductionHazard),
        "stall cycles must shrink under MT"
    );
}

#[test]
fn spawned_workers_computed_correctly() {
    // every worker ends with s7 = rsum over p2 — state is per-thread
    let (m, _) = run_source(full(), MT_PROGRAM, MAX).unwrap();
    // main thread (0) halted; its s2 reached 7
    assert_eq!(m.sreg(0, 2).to_u32(), 7);
}

#[test]
fn rotating_priority_is_fair() {
    // two threads of pure independent ALU work alternate issue slots
    let src = "
main:    li   s1, worker
         tspawn s2, s1
         li   s6, 50
mloop:   addi s6, s6, -1
         ceqi f1, s6, 0
         bf   f1, mloop
         tjoin s2
         halt
worker:  li   s6, 50
wloop:   addi s6, s6, -1
         ceqi f1, s6, 0
         bf   f1, wloop
         texit
";
    let (_, stats) = run_source(full(), src, MAX).unwrap();
    let a = stats.issued_by_thread[0] as f64;
    let b = stats.issued_by_thread[1] as f64;
    assert!((a / b) < 1.6 && (b / a) < 1.6, "fair split, got {a} vs {b}");
}

#[test]
fn thread_exhaustion_returns_all_ones() {
    // 16-thread machine: main + 15 spawns succeed, the 16th fails
    let src = "
main:    li   s1, worker
         li   s2, 0
         li   s3, 16
spawnl:  ceq  f1, s2, s3
         bt   f1, done
         tspawn s4, s1
         addi s2, s2, 1
         j    spawnl
done:    halt
worker:  j worker
";
    let (m, _) = run_source(full(), src, MAX).unwrap();
    // s4 holds the last tspawn result: all-ones = failure
    assert_eq!(m.sreg(0, 4).to_u32(), Width::W16.mask());
}

#[test]
fn tget_tput_transfer_data() {
    let src = "
main:    li   s1, worker
         tspawn s2, s1
         li   s3, 99
         tput s2, s5, s3     ; worker.s5 = 99
         tjoin s2
         halt
worker:  li   s7, 0
wait:    ceqi f1, s5, 99
         bf   f1, wait
         addi s5, s5, 1      ; s5 = 100
         texit
";
    let (m, _) = run_source(full(), src, MAX).unwrap();
    // after join, read worker's register from host: thread 1 s5
    assert_eq!(m.sreg(1, 5).to_u32(), 100);
}

#[test]
fn coarse_grain_is_worse_on_frequent_short_stalls() {
    // §5's argument: reduction stalls are frequent and short, so
    // coarse-grain switching (with its flush penalty) cannot hide them.
    let fine = run_source(full(), MT_PROGRAM, MAX).unwrap().1;
    let coarse = run_source(full().coarse_grain(4), MT_PROGRAM, MAX).unwrap().1;
    assert!(
        fine.cycles < coarse.cycles,
        "fine-grain {} should beat coarse-grain {}",
        fine.cycles,
        coarse.cycles
    );
    assert!(coarse.thread_switches > 0);
}

#[test]
fn forwarding_ablation_reintroduces_stalls() {
    // with forwarding: back-to-back; without: bubbles everywhere
    let src = "sub s1, s2, s3\npadds p1, p2, s1\nhalt\n";
    let with_fwd = issue_cycles(proto(), src);
    let without = issue_cycles(proto().without_forwarding(), src);
    assert_eq!(with_fwd[1] - with_fwd[0], 1);
    assert!(
        without[1] - without[0] >= 4,
        "no forwarding: must wait for WB, gap {}",
        without[1] - without[0]
    );
    let (_, stats) = run_source(proto().without_forwarding(), src, MAX).unwrap();
    assert!(stats.stalls_for(StallReason::BroadcastHazard) > 0);
}

#[test]
fn pshift_moves_data_between_pes() {
    let (m, _) = run_source(
        full(),
        "pidx   p1
         pshift p2, p1, 1      ; p2[i] = p1[i-1]
         pshift p3, p1, -4     ; p3[i] = p1[i+4]
         padd   p4, p2, p3
         rsum   s1, p2
         halt",
        MAX,
    )
    .unwrap();
    for pe in 0..16u32 {
        let expect2 = pe.saturating_sub(1);
        let expect3 = if pe + 4 < 16 { pe + 4 } else { 0 };
        assert_eq!(m.array().gpr(pe as usize, 0, 2).to_u32(), expect2);
        assert_eq!(m.array().gpr(pe as usize, 0, 3).to_u32(), expect3);
    }
    // sum of 0..=14 = 105
    assert_eq!(m.sreg(0, 1).to_u32(), 105);
}

// ------------------------------------------------------------ structural hazards

#[test]
fn sequential_divider_is_a_structural_hazard() {
    let mut cfg = full();
    cfg.divider = DividerConfig::Sequential { cycles: 18 };
    // two *independent* divisions: the second must wait for the unit
    let cycles = issue_cycles(
        cfg,
        "divi s1, s2, 3
         divi s3, s4, 5
         halt",
    );
    assert!(
        cycles[1] - cycles[0] >= 17,
        "second div waits for the sequential unit, gap {}",
        cycles[1] - cycles[0]
    );
    let (_, stats) = run_source(
        cfg,
        "divi s1, s2, 3
         divi s3, s4, 5
         halt",
        MAX,
    )
    .unwrap();
    assert!(stats.stalls_for(StallReason::Structural) > 0);
}

#[test]
fn pipelined_multiplier_has_no_structural_hazard() {
    let cfg = full(); // pipelined multiplier
    let cycles = issue_cycles(
        cfg,
        "muli s1, s2, 3
         muli s3, s4, 5
         halt",
    );
    assert_eq!(cycles[1] - cycles[0], 1);
}

#[test]
fn scalar_and_parallel_divider_are_separate_units() {
    let mut cfg = full();
    cfg.divider = DividerConfig::Sequential { cycles: 18 };
    let cycles = issue_cycles(
        cfg,
        "divi  s1, s2, 3
         pdivi p1, p2, 5
         halt",
    );
    assert_eq!(cycles[1] - cycles[0], 1, "different datapaths, no conflict");
}

// ------------------------------------------------------------ fetch model

#[test]
fn finite_fetch_matches_ideal_for_single_thread_straightline() {
    // with one thread and no branches, one fetch per cycle keeps pace with
    // one issue per cycle: finite fetch adds at most the initial fill
    let src = "li s1, 1\naddi s1, s1, 1\naddi s1, s1, 1\naddi s1, s1, 1\nhalt\n";
    let (_, ideal) = run_source(full().single_threaded(), src, MAX).unwrap();
    let (m, finite) = run_source(full().single_threaded().with_fetch_buffers(2), src, MAX).unwrap();
    assert_eq!(m.sreg(0, 1).to_u32(), 4);
    assert!(finite.cycles <= ideal.cycles + 2, "{} vs {}", finite.cycles, ideal.cycles);
}

#[test]
fn finite_fetch_functional_results_identical() {
    let (a, _) = run_source(full(), MT_PROGRAM, MAX).unwrap();
    let (b, _) = run_source(full().with_fetch_buffers(2), MT_PROGRAM, MAX).unwrap();
    for r in 0..16 {
        assert_eq!(a.sreg(0, r), b.sreg(0, r), "s{r}");
    }
}

#[test]
fn fetch_bandwidth_limits_many_banked_threads() {
    // 8 threads of pure ALU work want 8 issues/cycle worth of fetch; the
    // single-ported fetch unit caps the machine at ~1 issue/cycle and the
    // shortfall shows up as fetch-empty stalls... with single issue the
    // bandwidths match, so IPC should stay high but fetch-empty stalls
    // appear during branch-flush refills
    let src = "
main:    li   s1, worker
         tspawn s2, s1
         tspawn s3, s1
         tspawn s4, s1
         li   s6, 40
mloop:   addi s6, s6, -1
         ceqi f1, s6, 0
         bf   f1, mloop
         halt
worker:  li   s6, 40
wloop:   addi s6, s6, -1
         ceqi f1, s6, 0
         bf   f1, wloop
         texit
";
    let (_, stats) = run_source(full().with_fetch_buffers(2), src, MAX).unwrap();
    assert!(stats.ipc() > 0.5);
    // branchy code with flushed buffers must show refill stalls
    assert!(
        stats.stalls_for(StallReason::FetchEmpty) + stats.stalls_for(StallReason::BranchBubble) > 0
    );
}

#[test]
fn local_memory_is_shared_between_threads() {
    // §6.2: "the local memory is shared between threads at the hardware
    // level" — thread 0 stores, the worker loads
    let src = "
main:    pidx p1
         pmuli p2, p1, 5
         psw  p2, 0(p1)      ; lmem[idx] = idx*5, by thread 0
         li   s1, worker
         tspawn s2, s1
         tjoin s2
         halt
worker:  pidx p1
         plw  p3, 0(p1)      ; read what thread 0 wrote
         rsum s5, p3
         texit
";
    let (m, _) = run_source(full(), src, MAX).unwrap();
    let expect: u32 = (0..16).map(|i| i * 5).sum();
    assert_eq!(m.sreg(1, 5).to_u32(), expect, "worker sees thread 0's stores");
}

#[test]
fn coarse_grain_with_finite_fetch() {
    let src = MT_PROGRAM;
    let (m, stats) = run_source(full().coarse_grain(4).with_fetch_buffers(2), src, MAX).unwrap();
    assert_eq!(m.sreg(0, 2).to_u32(), 7, "still computes correctly");
    assert!(stats.thread_switches > 0);
}

#[test]
fn emulator_error_paths() {
    use crate::emulator::Emulator;
    // illegal instruction
    let mut e = Emulator::new(proto());
    e.machine_mut().load_words(&[0xff00_0000]).unwrap();
    assert!(matches!(e.run(1000), Err(RunError::IllegalInstruction { .. })));
    // pc out of range
    let mut e = Emulator::new(proto());
    e.machine_mut().load_words(&[0x0000_0000]).unwrap(); // single nop
    assert!(matches!(e.run(1000), Err(RunError::PcOutOfRange { .. })));
    // step limit
    let prog = assemble("loop: j loop\n").unwrap();
    let mut e = Emulator::with_program(proto(), &prog).unwrap();
    assert!(matches!(e.run(100), Err(RunError::CycleLimit { .. })));
}

// ------------------------------------------------------------ error paths

#[test]
fn missing_multiplier_is_reported() {
    let err = run_source(proto(), "mul s1, s2, s3\nhalt\n", MAX).unwrap_err();
    assert!(matches!(err, RunError::MissingUnit { unit: "multiplier", .. }));
}

#[test]
fn scalar_memory_fault() {
    let err = run_source(proto(), "li s1, 2000\nlw s2, 0(s1)\nhalt\n", MAX).unwrap_err();
    assert!(matches!(err, RunError::ScalarMemoryFault { .. }));
}

#[test]
fn pe_memory_fault_guaranteed() {
    let err = run_source(
        proto(),
        "pli  p1, 127
         pslli p1, p1, 4     ; 2032 > 511
         plw  p2, 0(p1)
         halt",
        MAX,
    )
    .unwrap_err();
    match err {
        RunError::PeMemoryFault { fault, .. } => {
            assert_eq!(fault.pe, 0);
            assert_eq!(fault.fault.addr, 2032);
        }
        other => panic!("expected PE fault, got {other}"),
    }
}

#[test]
fn illegal_instruction_word() {
    let mut m = Machine::new(proto());
    m.load_words(&[0xff00_0000]).unwrap();
    let err = m.run(MAX).unwrap_err();
    assert!(matches!(err, RunError::IllegalInstruction { pc: 0, .. }));
}

#[test]
fn pc_out_of_range_without_halt() {
    let err = run_source(proto(), "nop\nnop\n", MAX).unwrap_err();
    assert!(matches!(err, RunError::PcOutOfRange { pc: 2, .. }));
}

#[test]
fn invalid_thread_id() {
    let err = run_source(proto(), "li s1, 200\ntjoin s1\nhalt\n", MAX).unwrap_err();
    assert!(matches!(err, RunError::InvalidThread { tid: 200, .. }));
}

#[test]
fn join_self_is_invalid() {
    let err = run_source(proto(), "tid s1\ntjoin s1\nhalt\n", MAX).unwrap_err();
    assert!(matches!(err, RunError::InvalidThread { .. }));
}

#[test]
fn join_deadlock_detected() {
    let src = "
main:    li   s1, worker
         tspawn s2, s1
         tjoin s2
         halt
worker:  li   s1, 0
         tjoin s1            ; joins main -> mutual wait
         texit
";
    let err = run_source(full(), src, MAX).unwrap_err();
    assert!(matches!(err, RunError::Deadlock { .. }), "{err}");
}

#[test]
fn cycle_limit() {
    let err = run_source(proto(), "loop: j loop\n", 1000).unwrap_err();
    assert!(matches!(err, RunError::CycleLimit { limit: 1000 }));
}

#[test]
fn program_too_large() {
    let mut m = Machine::new(proto());
    let words = vec![0u32; 5000];
    assert!(matches!(m.load_words(&words), Err(RunError::ProgramTooLarge { .. })));
}

// ------------------------------------------------------------ differential

/// Random straight-line programs (memory offsets clamped to safe ranges)
/// must produce identical architectural state on the timing machine and
/// the functional emulator.
#[test]
fn timing_machine_matches_emulator_on_random_programs() {
    use asc_isa::gen::random_straightline_instr;
    use asc_isa::Instr;

    let mut rng = StdRng::seed_from_u64(0xA5C);
    for trial in 0..30 {
        let mut cfg = MachineConfig::new(8).with_width(Width::W8).single_threaded();
        cfg.multiplier = MultiplierKind::Pipelined { latency: 3 };
        cfg.divider = DividerConfig::Sequential { cycles: 10 };
        let len = rng.random_range(5..60);
        let mut instrs: Vec<Instr> = Vec::new();
        for _ in 0..len {
            let mut i = random_straightline_instr(&mut rng);
            // clamp memory offsets so no access can fault (W8 base <= 255)
            match &mut i {
                Instr::Lw { off, .. } | Instr::Sw { off, .. } => *off = off.rem_euclid(128),
                Instr::Plw { off, .. } | Instr::Psw { off, .. } => *off = off.rem_euclid(127),
                _ => {}
            }
            instrs.push(i);
        }
        instrs.push(Instr::Halt);
        let words: Vec<u32> = instrs.iter().map(asc_isa::encode).collect();

        let mut timing = Machine::new(cfg);
        timing.load_words(&words).unwrap();
        timing.run(MAX).unwrap();

        let mut emu = Emulator::new(cfg);
        emu.machine_mut().load_words(&words).unwrap();
        emu.run(MAX).unwrap();

        for r in 0..16 {
            assert_eq!(timing.sreg(0, r), emu.sreg(0, r), "trial {trial}: scalar reg {r}");
        }
        for f in 0..8 {
            assert_eq!(timing.sflag(0, f), emu.machine().sflag(0, f), "trial {trial} flag {f}");
        }
        for pe in 0..8 {
            for r in 0..16 {
                assert_eq!(
                    timing.array().gpr(pe, 0, r),
                    emu.array().gpr(pe, 0, r),
                    "trial {trial}: PE {pe} reg {r}"
                );
            }
            for f in 0..8 {
                assert_eq!(
                    timing.array().flag(pe, 0, f),
                    emu.array().flag(pe, 0, f),
                    "trial {trial}: PE {pe} flag {f}"
                );
            }
        }
        assert_eq!(timing.smem().as_slice(), emu.machine().smem().as_slice(), "trial {trial}");
    }
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let (m, stats) = run_source(full(), MT_PROGRAM, MAX).unwrap();
        (stats.cycles, stats.issued, m.sreg(0, 2))
    };
    assert_eq!(run(), run());
}

// ---------------------------------------------- schedule perturbation

/// Two threads write different constants to the same scalar-memory word
/// with no intervening join: the final value is decided by the
/// interleaving alone. The spawner stores more times than the (later
/// starting) child so the two write windows end neck and neck, and the
/// last writer flips with the rotation phase.
const RACY_PROGRAM: &str = "
main:    li   s1, child
         tspawn s2, s1
         li   s3, 1
         sw   s3, 100(s0)
         sw   s3, 100(s0)
         sw   s3, 100(s0)
         sw   s3, 100(s0)
         sw   s3, 100(s0)
         sw   s3, 100(s0)
         tjoin s2
         halt
child:   li   s3, 2
         sw   s3, 100(s0)
         sw   s3, 100(s0)
         texit
";

#[test]
fn sched_seed_zero_is_the_exact_baseline() {
    let (a, sa) = run_source(full(), MT_PROGRAM, MAX).unwrap();
    let (b, sb) = run_source(full().with_sched_seed(0), MT_PROGRAM, MAX).unwrap();
    assert_eq!(sa.cycles, sb.cycles);
    assert_eq!(sa.issued, sb.issued);
    assert_eq!(a.arch_digest(), b.arch_digest());
}

#[test]
fn perturbed_schedules_are_deterministic_per_seed() {
    let run = |seed| {
        let (m, stats) = run_source(full().with_sched_seed(seed), MT_PROGRAM, MAX).unwrap();
        (stats.cycles, stats.issued, m.arch_digest())
    };
    assert_eq!(run(3), run(3));
    assert_eq!(run(7), run(7));
}

#[test]
fn race_free_program_is_schedule_invariant() {
    let base = run_source(full(), MT_PROGRAM, MAX).unwrap().0.arch_digest();
    for seed in 1..=8u64 {
        let (m, _) = run_source(full().with_sched_seed(seed), MT_PROGRAM, MAX).unwrap();
        assert_eq!(m.arch_digest(), base, "seed {seed}");
    }
    // coarse-grain perturbation is equally invisible to race-free code
    let coarse = full().coarse_grain(4);
    let base = run_source(coarse, MT_PROGRAM, MAX).unwrap().0.arch_digest();
    for seed in 1..=4u64 {
        let (m, _) = run_source(coarse.with_sched_seed(seed), MT_PROGRAM, MAX).unwrap();
        assert_eq!(m.arch_digest(), base, "coarse seed {seed}");
    }
}

#[test]
fn racy_program_diverges_across_perturbed_schedules() {
    let mut values = std::collections::BTreeSet::new();
    let mut digests = std::collections::BTreeSet::new();
    for seed in 0..16u64 {
        let (m, _) = run_source(full().with_sched_seed(seed), RACY_PROGRAM, MAX).unwrap();
        values.insert(m.smem().read(100).unwrap().0);
        digests.insert(m.arch_digest());
    }
    assert!(values.len() >= 2, "the write-write race must be schedule-dependent, got {values:?}");
    assert!(digests.len() >= 2, "divergent values must show up in the digest");
}

#[test]
fn single_threaded_runs_ignore_the_seed_entirely() {
    let cfg = full().single_threaded();
    let base = run_source(cfg, ST_PROGRAM, MAX).unwrap().1;
    for seed in [1, 99u64] {
        let stats = run_source(cfg.with_sched_seed(seed), ST_PROGRAM, MAX).unwrap().1;
        assert_eq!(stats.cycles, base.cycles, "seed {seed}");
        assert_eq!(stats.issued, base.issued, "seed {seed}");
    }
}

// ------------------------------------------------------------ baseline

#[test]
fn nonpipelined_baseline_runs_same_program() {
    let prog = assemble(ST_PROGRAM).unwrap();
    let out = run_nonpipelined(MachineConfig::new(16), &prog, MAX).unwrap();
    // 140 iterations x 5 instructions + 3 setup-ish; rsum costs 16 cycles
    assert!(out.instructions > 700);
    assert!(out.cycles > out.instructions, "bit-serial reductions cost extra");
}

// ------------------------------------------------------------ diagrams

#[test]
fn hazard_diagram_renders_figure_2() {
    let cfg = proto();
    let program = assemble(
        "rmax s1, p2
         sub  s3, s1, s1
         halt",
    )
    .unwrap();
    let mut m = Machine::with_program(cfg, &program).unwrap();
    m.enable_trace();
    m.run(MAX).unwrap();
    let t = m.timing();
    let records: Vec<_> = m.trace().unwrap()[..2].to_vec();
    let diagram = crate::pipeline::hazard_diagram(&records, &t);
    // the stalled SUB must repeat ID at least b+r times
    let sub_line = diagram.lines().find(|l| l.contains("sub")).unwrap();
    let id_count = sub_line.matches(" ID").count();
    assert!(id_count >= (t.b + t.r) as usize, "{diagram}");
    assert!(diagram.contains("R4"));
    assert!(diagram.contains("WB"));
}

// ------------------------------------------------------------ observability

#[test]
fn trace_events_reconcile_with_stats_on_mt_kernel() {
    use crate::obs::{RingBufferSink, SinkHandle, ThreadTransition, TraceEvent};
    use std::cell::RefCell;
    use std::rc::Rc;

    let program = assemble(MT_PROGRAM).unwrap();
    let mut m = Machine::with_program(full(), &program).unwrap();
    let ring = Rc::new(RefCell::new(RingBufferSink::new(1 << 20)));
    m.attach_sink(SinkHandle::shared(ring.clone()));
    let stats = m.run(MAX).unwrap();

    let ring = ring.borrow();
    assert_eq!(ring.dropped(), 0, "ring sized to hold the whole run");
    let mut issues = 0u64;
    let mut issues_reduction = 0u64;
    let mut retires = 0u64;
    let mut last_retire = 0u64;
    let mut stall_cycles = 0u64;
    let mut spawned = 0u64;
    let mut exited = 0u64;
    let mut sum_ops = 0u64;
    let mut bcast_ops = 0u64;
    for ev in ring.events() {
        match *ev {
            TraceEvent::Issue { class, .. } => {
                issues += 1;
                if class == asc_isa::InstrClass::Reduction {
                    issues_reduction += 1;
                }
            }
            TraceEvent::Retire { cycle, .. } => {
                retires += 1;
                last_retire = last_retire.max(cycle);
            }
            TraceEvent::Stall { cycles, .. } => stall_cycles += cycles,
            TraceEvent::Thread { transition, .. } => match transition {
                ThreadTransition::Spawned => spawned += 1,
                ThreadTransition::Exited => exited += 1,
                _ => {}
            },
            TraceEvent::NetOp { unit, .. } => match unit {
                asc_network::NetUnit::Sum => sum_ops += 1,
                asc_network::NetUnit::Broadcast => bcast_ops += 1,
                _ => {}
            },
            TraceEvent::UnitBusy { .. } => {}
        }
    }
    assert_eq!(issues, stats.issued, "one Issue event per issued instruction");
    assert_eq!(retires, stats.issued, "one Retire event per issued instruction");
    assert_eq!(last_retire, stats.last_writeback);
    assert_eq!(stall_cycles, stats.stall_cycles, "stall spans cover every empty slot");
    assert_eq!(spawned, 7, "seven workers spawned");
    assert_eq!(exited, 7, "seven workers exited");
    assert_eq!(sum_ops, issues_reduction, "each rsum uses the sum tree once");
    assert_eq!(
        bcast_ops,
        stats.issued_by_class[1] + stats.issued_by_class[2],
        "every parallel/reduction instruction crosses the broadcast tree"
    );
}

#[test]
fn jsonl_trace_of_real_run_round_trips() {
    use crate::obs::{parse_json_lines, JsonLinesSink, RingBufferSink, SinkHandle, TraceEvent};
    use std::cell::RefCell;
    use std::rc::Rc;

    let program = assemble(MT_PROGRAM).unwrap();

    // run once into a JSON-Lines sink over a byte buffer
    let jsonl = Rc::new(RefCell::new(JsonLinesSink::new(Vec::new())));
    let mut m = Machine::with_program(full(), &program).unwrap();
    m.attach_sink(SinkHandle::shared(jsonl.clone()));
    m.run(MAX).unwrap();
    drop(m);
    let sink = Rc::try_unwrap(jsonl).expect("machine dropped").into_inner();
    assert!(sink.error().is_none());
    let written = sink.written();
    let text = String::from_utf8(sink.into_writer().unwrap()).unwrap();
    let parsed = parse_json_lines(&text).expect("every emitted event parses back");
    assert_eq!(parsed.len() as u64, written);

    // the simulator is deterministic: an identical run into a ring buffer
    // must produce the identical event stream
    let ring = Rc::new(RefCell::new(RingBufferSink::new(1 << 20)));
    let mut m = Machine::with_program(full(), &program).unwrap();
    m.attach_sink(SinkHandle::shared(ring.clone()));
    m.run(MAX).unwrap();
    let expected: Vec<TraceEvent> = ring.borrow().events().copied().collect();
    assert_eq!(parsed, expected);
}

#[test]
fn run_report_totals_match_stats_on_mt_kernel() {
    use crate::obs::RunReport;

    let (m, stats) = run_source(full(), MT_PROGRAM, MAX).unwrap();
    let report = RunReport::from_machine(&m);
    assert_eq!(&report.totals, &stats, "report totals are the legacy Stats verbatim");
    let back = RunReport::parse(&report.to_json().to_pretty()).unwrap();
    assert_eq!(back.totals.issued, stats.issued);
    assert_eq!(back.totals.stall_cycles, stats.stall_cycles);
    assert_eq!(back.totals.issued_by_thread, stats.issued_by_thread);
    assert_eq!(back.metrics.counter("cycles"), stats.cycles);
    for reason in StallReason::ALL {
        assert_eq!(
            back.metrics.counter(&format!("stall.{}", reason.label())),
            stats.stalls_for(reason),
            "{reason}"
        );
    }
}

#[test]
fn unsinked_machine_emits_nothing_and_matches_sinked_run() {
    use crate::obs::{RingBufferSink, SinkHandle};

    // attaching a sink must not perturb timing
    let (_, plain) = run_source(full(), MT_PROGRAM, MAX).unwrap();
    let program = assemble(MT_PROGRAM).unwrap();
    let mut m = Machine::with_program(full(), &program).unwrap();
    m.attach_sink(SinkHandle::new(RingBufferSink::new(64)));
    let sinked = m.run(MAX).unwrap();
    assert_eq!(plain, sinked, "tracing is observation, not intervention");
    assert!(m.sink().is_some());
    assert!(m.detach_sink().is_some());
    assert!(m.sink().is_none());
}
