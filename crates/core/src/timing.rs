//! The pipeline timing model (Section 4 of the paper), as pure functions.
//!
//! Stage schedule for an instruction issued at cycle `i`, with broadcast
//! latency `b` = ⌈log_k p⌉ and reduction latency `r` = ⌈log₂ p⌉:
//!
//! ```text
//! scalar:    SR@i  EX@i+1  MA@i+2  WB@i+3
//! parallel:  SR@i  B1..B_b@i+1..i+b  PR@i+b+1  EX@i+b+2  MA@i+b+3  WB@i+b+4
//! reduction: SR@i  B1..B_b@i+1..i+b  PR@i+b+1  R1..R_r@i+b+2..i+b+r+1  WB@i+b+r+2
//! ```
//!
//! Forwarding rule: a value produced at the end of cycle `t` can be
//! consumed by any stage executing at cycle `t+1` or later. The paper's
//! three hazards fall out:
//!
//! * **broadcast hazard** — parallel consumes a scalar result at B1
//!   (`i+1`); a scalar ALU result is ready at the end of EX (`i+1`), so a
//!   back-to-back pair never stalls (EX→B1 forwarding);
//! * **reduction hazard** — a scalar consumer needs the reduction result
//!   (ready end of R_r = `i+b+r+1`, forwarded from the last reduction
//!   stage) in its EX; the dependent instruction stalls **b+r** cycles;
//! * **broadcast-reduction hazard** — a parallel consumer needs it at B1;
//!   also **b+r** stall cycles.

use asc_isa::{Instr, InstrClass, RegClass};
use asc_pe::{DividerConfig, MultiplierKind};

/// Broadcast/reduction latencies of the configured machine, plus
/// multiplier/divider latencies — everything the hazard model needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timing {
    /// Broadcast tree latency `b` in cycles.
    pub b: u64,
    /// Reduction tree latency `r` in cycles.
    pub r: u64,
    /// Multiplier implementation.
    pub multiplier: MultiplierKind,
    /// Divider implementation.
    pub divider: DividerConfig,
    /// EX→B1 / EX→EX forwarding paths present (the paper's design). With
    /// forwarding disabled (ablation), results are only visible through
    /// the register file after WB, and operands are consumed at the
    /// register-read stages (SR / PR).
    pub forwarding: bool,
}

impl Timing {
    /// Execution latency of the instruction's functional unit (1 for the
    /// ALU, more for multiplier/divider).
    pub fn unit_latency(&self, i: &Instr) -> u64 {
        if i.uses_multiplier() {
            match self.multiplier {
                MultiplierKind::None => 1, // rejected earlier as illegal
                MultiplierKind::Pipelined { latency } => latency.max(1),
                MultiplierKind::Sequential { cycles } => cycles.max(1),
            }
        } else if i.uses_divider() {
            match self.divider {
                DividerConfig::None => 1,
                DividerConfig::Sequential { cycles } => cycles.max(1),
            }
        } else {
            1
        }
    }

    /// Cycle offset (from issue) at which the instruction's EX stage
    /// starts.
    pub fn ex_start(&self, class: InstrClass) -> u64 {
        match class {
            InstrClass::Scalar => 1,
            InstrClass::Parallel => self.b + 2,
            // reductions have no EX; R1 plays that role for operand entry
            InstrClass::Reduction => self.b + 2,
        }
    }

    /// Cycle offset (from issue) at the end of which the instruction's
    /// result is available through forwarding.
    pub fn produce_offset(&self, i: &Instr) -> u64 {
        if !self.forwarding {
            // ablation: the value only becomes visible via the register
            // file, at the end of WB
            return self.retire_offset(i);
        }
        let lat = self.unit_latency(i);
        match i.class() {
            InstrClass::Scalar => {
                if matches!(i, Instr::Lw { .. }) {
                    2 // end of MA
                } else {
                    lat // end of EX (1 for the ALU, more for mul/div)
                }
            }
            InstrClass::Parallel => {
                if matches!(i, Instr::Plw { .. }) {
                    self.b + 3 // end of MA
                } else {
                    self.b + 1 + lat // end of EX
                }
            }
            // forwarded out of the last reduction stage R_r
            InstrClass::Reduction => self.b + self.r + 1,
        }
    }

    /// Cycle offset (from issue) at the start of which a source operand in
    /// register file `side` is consumed by an instruction of class
    /// `class`.
    ///
    /// Scalar-side operands: scalar instructions read them in EX (`i+1`,
    /// forwarded); parallel/reduction instructions need them when entering
    /// the broadcast network at B1 (`i+1`) — the same offset, which is why
    /// EX→B1 forwarding kills broadcast hazards. Parallel-side operands:
    /// read at PR and forwarded into EX / R1 (`i+b+2`).
    pub fn consume_offset(&self, class: InstrClass, side: RegClass) -> u64 {
        if !self.forwarding {
            // ablation: operands come from the register files at the read
            // stages — SR (issue cycle) for scalar, PR for parallel
            return match side {
                RegClass::SGpr | RegClass::SFlag => 0,
                RegClass::PGpr | RegClass::PFlag => self.b + 1,
            };
        }
        match (class, side) {
            (_, RegClass::SGpr | RegClass::SFlag) => 1,
            (InstrClass::Scalar, _) => 1, // scalar instrs have no parallel reads
            (_, RegClass::PGpr | RegClass::PFlag) => self.b + 2,
        }
    }

    /// Cycle offset (from issue) at the end of which the instruction
    /// leaves the pipeline (its WB stage) — used for the final drain.
    pub fn retire_offset(&self, i: &Instr) -> u64 {
        let extra = self.unit_latency(i).saturating_sub(1);
        match i.class() {
            InstrClass::Scalar => 3 + extra,
            InstrClass::Parallel => self.b + 4 + extra,
            InstrClass::Reduction => self.b + self.r + 2,
        }
    }

    /// Names of the pipeline stages an instruction of `class` traverses
    /// (after IF/ID), for the diagram renderers.
    pub fn stage_names(&self, class: InstrClass) -> Vec<String> {
        let mut v = vec!["SR".to_string()];
        match class {
            InstrClass::Scalar => v.extend(["EX".into(), "MA".into(), "WB".into()]),
            InstrClass::Parallel => {
                for k in 1..=self.b {
                    v.push(format!("B{k}"));
                }
                v.extend(["PR".into(), "EX".into(), "MA".into(), "WB".into()]);
            }
            InstrClass::Reduction => {
                for k in 1..=self.b {
                    v.push(format!("B{k}"));
                }
                v.push("PR".into());
                for k in 1..=self.r {
                    v.push(format!("R{k}"));
                }
                v.push("WB".into());
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asc_isa::{AluOp, Mask, PReg, ReduceOp, SReg};

    fn t() -> Timing {
        // the paper's running example: b = 2, r = 4 (p = 16, k = 4)
        Timing {
            b: 2,
            r: 4,
            multiplier: MultiplierKind::None,
            divider: DividerConfig::None,
            forwarding: true,
        }
    }

    fn sub() -> Instr {
        Instr::SAlu {
            op: AluOp::Sub,
            rd: SReg::from_index(1),
            ra: SReg::from_index(2),
            rb: SReg::from_index(3),
        }
    }

    fn padd_s() -> Instr {
        Instr::PAluS {
            op: AluOp::Add,
            pd: PReg::from_index(1),
            pa: PReg::from_index(2),
            sb: SReg::from_index(1),
            mask: Mask::All,
        }
    }

    fn rmax() -> Instr {
        Instr::Reduce {
            op: ReduceOp::Max,
            sd: SReg::from_index(1),
            pa: PReg::from_index(2),
            mask: Mask::All,
        }
    }

    /// Figure 2, top: broadcast hazard — PADD issued one cycle after the
    /// SUB that produces its scalar operand does not stall.
    #[test]
    fn broadcast_hazard_forwarded() {
        let t = t();
        let produce = t.produce_offset(&sub()); // SUB issued at 0
                                                // earliest issue of the dependent PADD: consume at j+1 must be
                                                // after produce → j >= produce
        let earliest = produce; // j + consume_offset - 1 >= produce ⇒ j >= produce - c + 1
        let c = t.consume_offset(InstrClass::Parallel, RegClass::SGpr);
        let j_min = produce.saturating_sub(c - 1);
        assert_eq!(produce, 1);
        assert_eq!(j_min, 1, "back-to-back issue, no stall");
        let _ = earliest;
    }

    /// Figure 2, middle: reduction hazard — dependent scalar stalls b+r.
    #[test]
    fn reduction_hazard_stalls_b_plus_r() {
        let t = t();
        let produce = t.produce_offset(&rmax()); // issued at 0
        assert_eq!(produce, t.b + t.r + 1);
        let c = t.consume_offset(InstrClass::Scalar, RegClass::SGpr);
        let j_min = produce - (c - 1); // = produce since c == 1
        let unconstrained = 1u64;
        assert_eq!(j_min - unconstrained, t.b + t.r, "stall is exactly b+r");
    }

    /// Figure 2, bottom: broadcast-reduction hazard — dependent parallel
    /// stalls b+r.
    #[test]
    fn broadcast_reduction_hazard_stalls_b_plus_r() {
        let t = t();
        let produce = t.produce_offset(&rmax());
        let c = t.consume_offset(InstrClass::Parallel, RegClass::SGpr);
        let j_min = produce - (c - 1);
        assert_eq!(j_min - 1, t.b + t.r);
    }

    #[test]
    fn load_use_is_one_bubble() {
        let t = t();
        let lw = Instr::Lw { rd: SReg::from_index(1), base: SReg::from_index(2), off: 0 };
        assert_eq!(t.produce_offset(&lw), 2);
        // dependent scalar: j >= 2 → one bubble after back-to-back
        let plw = Instr::Plw {
            pd: PReg::from_index(1),
            base: PReg::from_index(2),
            off: 0,
            mask: Mask::All,
        };
        assert_eq!(t.produce_offset(&plw), t.b + 3);
    }

    #[test]
    fn parallel_back_to_back_forwarded() {
        let t = t();
        let produce = t.produce_offset(&padd_s()); // b + 2
        let c = t.consume_offset(InstrClass::Parallel, RegClass::PGpr); // b + 2
        let j_min = produce - (c - 1);
        assert_eq!(j_min, 1, "PE-local EX→EX forwarding");
        // and a reduction consuming it back-to-back likewise
        let c = t.consume_offset(InstrClass::Reduction, RegClass::PGpr);
        assert_eq!(produce - (c - 1), 1);
    }

    #[test]
    fn multiplier_latencies() {
        let mut tm = t();
        tm.multiplier = MultiplierKind::Pipelined { latency: 3 };
        let mul = Instr::SAlu {
            op: AluOp::Mul,
            rd: SReg::from_index(1),
            ra: SReg::from_index(2),
            rb: SReg::from_index(3),
        };
        assert_eq!(tm.produce_offset(&mul), 3);
        tm.multiplier = MultiplierKind::Sequential { cycles: 16 };
        assert_eq!(tm.produce_offset(&mul), 16);
        tm.divider = DividerConfig::Sequential { cycles: 18 };
        let div = Instr::PAlu {
            op: AluOp::Div,
            pd: PReg::from_index(1),
            pa: PReg::from_index(2),
            pb: PReg::from_index(3),
            mask: Mask::All,
        };
        assert_eq!(tm.produce_offset(&div), tm.b + 1 + 18);
    }

    #[test]
    fn stage_names_match_figure_1() {
        let t = t();
        assert_eq!(t.stage_names(InstrClass::Scalar), ["SR", "EX", "MA", "WB"]);
        assert_eq!(t.stage_names(InstrClass::Parallel), ["SR", "B1", "B2", "PR", "EX", "MA", "WB"]);
        assert_eq!(
            t.stage_names(InstrClass::Reduction),
            ["SR", "B1", "B2", "PR", "R1", "R2", "R3", "R4", "WB"]
        );
    }

    #[test]
    fn retire_offsets() {
        let t = t();
        assert_eq!(t.retire_offset(&sub()), 3);
        assert_eq!(t.retire_offset(&padd_s()), t.b + 4);
        assert_eq!(t.retire_offset(&rmax()), t.b + t.r + 2);
    }

    /// Ablation: with forwarding off, even the broadcast hazard stalls
    /// (§4.2's motivation for the EX→B1 forwarding path).
    #[test]
    fn no_forwarding_reintroduces_broadcast_stalls() {
        let mut tm = t();
        tm.forwarding = false;
        // scalar producer visible at WB (offset 3); parallel consumer
        // reads at SR (offset 0) → three bubbles
        assert_eq!(tm.produce_offset(&sub()), 3);
        assert_eq!(tm.consume_offset(InstrClass::Parallel, RegClass::SGpr), 0);
        // reduction producer seen at WB only
        assert_eq!(tm.produce_offset(&rmax()), tm.b + tm.r + 2);
    }
}
