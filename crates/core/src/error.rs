//! Simulator error types.

use std::fmt;

use asc_isa::DecodeError;
use asc_pe::PeFault;

/// Why a simulation stopped abnormally. Every variant carries the thread
/// and program counter for diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// A word in instruction memory failed to decode.
    IllegalInstruction {
        /// Executing thread.
        thread: usize,
        /// Instruction address.
        pc: u32,
        /// The decode failure.
        cause: DecodeError,
    },
    /// An instruction needs a functional unit this machine doesn't have
    /// (multiplier/divider configured as `None`).
    MissingUnit {
        /// Executing thread.
        thread: usize,
        /// Instruction address.
        pc: u32,
        /// "multiplier" or "divider".
        unit: &'static str,
    },
    /// A thread's PC left instruction memory.
    PcOutOfRange {
        /// Executing thread.
        thread: usize,
        /// The bad address.
        pc: u32,
        /// Number of instructions loaded.
        len: u32,
    },
    /// A PE local-memory access faulted.
    PeMemoryFault {
        /// Executing thread.
        thread: usize,
        /// Instruction address.
        pc: u32,
        /// The fault.
        fault: PeFault,
    },
    /// A scalar memory access faulted.
    ScalarMemoryFault {
        /// Executing thread.
        thread: usize,
        /// Instruction address.
        pc: u32,
        /// The offending word address.
        addr: i64,
    },
    /// A thread-management instruction referenced a nonexistent thread id.
    InvalidThread {
        /// Executing thread.
        thread: usize,
        /// Instruction address.
        pc: u32,
        /// The bad thread id.
        tid: u32,
    },
    /// The cycle limit passed to `run` was reached before the program
    /// finished (livelock/deadlock guard).
    CycleLimit {
        /// The limit that was hit.
        limit: u64,
    },
    /// Every live thread is blocked on a join and none can ever complete
    /// (join deadlock).
    Deadlock {
        /// Cycle at which the deadlock was detected.
        cycle: u64,
    },
    /// The program (or a `tspawn` target) did not fit in instruction
    /// memory.
    ProgramTooLarge {
        /// Instructions in the program.
        len: usize,
        /// Instruction memory capacity.
        capacity: usize,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::IllegalInstruction { thread, pc, cause } => {
                write!(f, "thread {thread} pc {pc}: illegal instruction: {cause}")
            }
            RunError::MissingUnit { thread, pc, unit } => {
                write!(f, "thread {thread} pc {pc}: machine has no {unit}")
            }
            RunError::PcOutOfRange { thread, pc, len } => {
                write!(f, "thread {thread}: pc {pc} outside program (len {len})")
            }
            RunError::PeMemoryFault { thread, pc, fault } => {
                write!(f, "thread {thread} pc {pc}: {fault}")
            }
            RunError::ScalarMemoryFault { thread, pc, addr } => {
                write!(f, "thread {thread} pc {pc}: scalar memory address {addr} out of range")
            }
            RunError::InvalidThread { thread, pc, tid } => {
                write!(f, "thread {thread} pc {pc}: invalid thread id {tid}")
            }
            RunError::CycleLimit { limit } => write!(f, "cycle limit {limit} exceeded"),
            RunError::Deadlock { cycle } => write!(f, "join deadlock detected at cycle {cycle}"),
            RunError::ProgramTooLarge { len, capacity } => {
                write!(f, "program of {len} instructions exceeds imem capacity {capacity}")
            }
        }
    }
}

impl std::error::Error for RunError {}
