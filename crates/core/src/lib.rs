#![warn(missing_docs)]

//! # asc-core — cycle-accurate simulator of the Multithreaded ASC Processor
//!
//! The paper's primary contribution: a SIMD processor whose
//! broadcast/reduction networks are **fully pipelined** and whose control
//! unit is **fine-grain multithreaded**, so the b+r-cycle reduction
//! hazards that stall a single-threaded pipelined SIMD machine are filled
//! with instructions from other hardware threads.
//!
//! ```
//! use asc_core::{Machine, MachineConfig};
//!
//! let program = asc_asm::assemble(
//!     "        pidx  p1          ; p1 = PE index
//!              rsum  s1, p1      ; s1 = sum of indices
//!              halt
//!     ",
//! ).unwrap();
//! let mut m = Machine::with_program(MachineConfig::prototype(), &program).unwrap();
//! let stats = m.run(10_000).unwrap();
//! assert_eq!(m.sreg(0, 1).to_u32(), (0..16).sum::<u32>());
//! assert!(stats.cycles > 0);
//! ```
//!
//! Main types: [`MachineConfig`] (geometry + scheduler policy), [`Machine`]
//! (the timing simulator), [`Emulator`] (fast functional mode),
//! [`baseline`] (non-pipelined and coarse-grain comparison points),
//! [`pipeline`] (generated reproductions of the paper's figures), and
//! [`Stats`]/[`StallReason`] (the measurements the experiments report).

pub mod baseline;
pub mod config;
pub mod emulator;
pub mod error;
pub mod obs;
pub mod pipeline;
pub mod scoreboard;
pub mod stats;
pub mod threads;
pub mod timing;

mod compile;
mod exec;
mod fusion;
mod machine;

// Re-exported: `MachineConfig::simd_level` / `Machine::simd_level` return
// it, so consumers can name the tier without depending on `asc-pe`.
pub use asc_pe::SimdLevel;
pub use config::{FetchModel, MachineConfig, SchedPolicy};
pub use emulator::Emulator;
pub use error::RunError;
pub use fusion::{cut_reason, fusible_runs, CutReason, FusibleRun, FusionStats, MIN_BLOCK_LEN};
pub use machine::{IssueRecord, Machine, Step};
pub use obs::{Profile, RingBufferSink, RunReport, SinkHandle, TraceEvent, TraceSink};
pub use stats::{StallReason, Stats};
pub use timing::Timing;

/// Assemble source and run it on a fresh machine; convenience for tests,
/// examples, and kernels. Returns the machine (for state inspection) and
/// the run statistics.
pub fn run_source(
    cfg: MachineConfig,
    source: &str,
    max_cycles: u64,
) -> Result<(Machine, Stats), RunError> {
    let program = asc_asm::assemble(source)
        .unwrap_or_else(|errs| panic!("assembly failed:\n{}", asc_asm::render_errors(&errs)));
    let mut m = Machine::with_program(cfg, &program)?;
    let stats = m.run(max_cycles)?;
    Ok((m, stats))
}

#[cfg(all(test, feature = "proptest"))]
mod proptests;
#[cfg(test)]
mod tests;
