//! Machine-readable lint output: the `mtasc.lint.v1` schema.
//!
//! ```json
//! {
//!   "schema": "mtasc.lint.v1",
//!   "program": { "len": 7 },
//!   "diagnostics": [
//!     { "severity": "error", "code": "E2002", "pc": 3, "line": 12,
//!       "col": 9, "message": "...", "notes": ["..."] }
//!   ],
//!   "summary": { "errors": 1, "warnings": 0, "notes": 2 }
//! }
//! ```
//!
//! `line`/`col` are present only when the program carries a source map
//! (assembled programs do; raw word streams don't). The encoder reuses
//! the observability layer's [`Json`] value type, so reports parse with
//! the same strict parser the run-report round-trip tests use.

use asc_core::obs::Json;

use crate::LintReport;

/// Encode a report as a `mtasc.lint.v1` JSON value.
pub(crate) fn to_json(report: &LintReport) -> Json {
    let diags: Vec<Json> = report
        .diagnostics
        .iter()
        .map(|d| {
            let mut obj = vec![
                ("severity".to_string(), Json::str(d.severity.label())),
                ("code".to_string(), Json::str(d.code)),
                ("pc".to_string(), Json::U64(d.pc as u64)),
            ];
            if d.line > 0 {
                obj.push(("line".to_string(), Json::U64(d.line as u64)));
            }
            if d.span.col > 0 {
                obj.push(("col".to_string(), Json::U64(d.span.col as u64)));
            }
            obj.push(("message".to_string(), Json::str(d.message.clone())));
            obj.push((
                "notes".to_string(),
                Json::Arr(d.notes.iter().map(|n| Json::str(n.clone())).collect()),
            ));
            Json::Obj(obj)
        })
        .collect();
    Json::Obj(vec![
        ("schema".to_string(), Json::str("mtasc.lint.v1")),
        (
            "program".to_string(),
            Json::Obj(vec![("len".to_string(), Json::U64(report.program_len as u64))]),
        ),
        ("diagnostics".to_string(), Json::Arr(diags)),
        (
            "summary".to_string(),
            Json::Obj(vec![
                ("errors".to_string(), Json::U64(report.error_count() as u64)),
                ("warnings".to_string(), Json::U64(report.warning_count() as u64)),
                ("notes".to_string(), Json::U64(report.note_count() as u64)),
            ]),
        ),
    ])
}
