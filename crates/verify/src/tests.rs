//! Unit tests for the analyzer: one or more per diagnostic family, plus
//! severity-contract and output-format checks. The differential tests
//! (every error-severity finding corresponds to a real `Machine::run`
//! fault) live in the workspace-root `tests/` directory, next to the
//! proptest harness.

use asc_core::MachineConfig;
use asc_isa::encode;

use crate::{analyze, analyze_words, Severity};

fn asm(src: &str) -> asc_asm::Program {
    asc_asm::assemble(src).unwrap_or_else(|e| panic!("{}", asc_asm::render_errors(&e)))
}

fn codes(report: &crate::LintReport) -> Vec<&'static str> {
    report.diagnostics.iter().map(|d| d.code).collect()
}

fn has(report: &crate::LintReport, code: &str) -> bool {
    report.diagnostics.iter().any(|d| d.code == code)
}

#[test]
fn clean_kernel_has_no_errors_or_warnings() {
    let p = asm("        pidx    p1
                         rmax    s1, p1
                         pceqs   pf1, p1, s1
                         pfirst  pf2, pf1
                         rget    s2, p1, pf2
                         sw      s2, 0(s0)
                         halt
        ");
    let r = analyze(&p, &MachineConfig::prototype());
    assert_eq!(r.error_count(), 0, "{}", r.render(None, "t"));
    assert_eq!(r.warning_count(), 0, "{}", r.render(None, "t"));
}

#[test]
fn falling_off_the_end_is_a_definite_error() {
    let p = asm("        li s1, 1\n");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(has(&r, "E0001"), "{:?}", codes(&r));
}

#[test]
fn conditional_fallthrough_off_end_is_a_warning() {
    // The branch at the end may or may not be taken; only one arm faults.
    let p = asm("start:  pidx    p1
                         rany    f1, pf1
                         bt      f1, start
        ");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(has(&r, "W0001"), "{:?}", codes(&r));
    assert!(!has(&r, "E0001"));
}

#[test]
fn jump_outside_program_is_an_error() {
    let p = asm("        j 99\n        halt\n");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(has(&r, "E0002"), "{:?}", codes(&r));
    // The halt is unreachable, too.
    assert!(has(&r, "W0006"), "{:?}", codes(&r));
}

#[test]
fn folded_branch_makes_bad_target_definite() {
    // f1 is provably true: li 5 / ceqi 5. The branch to pc 99 always fires.
    let p = asm("        li      s1, 5
                         ceqi    f1, s1, 5
                         bt      f1, 99
                         halt
        ");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(has(&r, "E0002"), "{:?}", codes(&r));
}

#[test]
fn missing_multiplier_is_caught_statically() {
    let p = asm("        li s1, 3\n        muli s2, s1, 4\n        halt\n");
    let r = analyze(&p, &MachineConfig::prototype()); // prototype has no multiplier
    assert!(has(&r, "E0003"), "{:?}", codes(&r));
    let r2 = analyze(&p, &MachineConfig::new(16)); // default config has one
    assert!(!has(&r2, "E0003") && !has(&r2, "W0003"));
}

#[test]
fn oversized_program_is_rejected() {
    let words: Vec<u32> = (0..4097).map(|_| encode(&asc_isa::Instr::Nop)).collect();
    let r = analyze_words(&words, &MachineConfig::prototype());
    assert_eq!(codes(&r), vec!["E0004"]);
}

#[test]
fn undecodable_word_is_flagged() {
    let r = analyze_words(&[0xffff_ffff], &MachineConfig::prototype());
    assert!(has(&r, "E0005"), "{:?}", codes(&r));
}

#[test]
fn never_initialized_read_warns() {
    let p = asm("        add s1, s2, s3\n        halt\n");
    let r = analyze(&p, &MachineConfig::prototype());
    let uninit: Vec<_> = r.diagnostics.iter().filter(|d| d.code == "W1001").collect();
    assert_eq!(uninit.len(), 2, "{:?}", codes(&r)); // s2 and s3
    assert_eq!(r.error_count(), 0); // registers read as zero: not a fault
}

#[test]
fn partially_initialized_read_warns_maybe() {
    let p = asm("        lw      s9, 0(s0)
                         cnei    f1, s9, 0
                         bt      f1, skip
                         li      s1, 5
        skip:            mov     s2, s1
                         halt
        ");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(has(&r, "W1002"), "{:?}", codes(&r));
    assert!(!has(&r, "W1001"));
}

#[test]
fn spawned_threads_may_read_arguments_without_warning() {
    // The child reads s1, written by the parent via tput: no W1001.
    let p = asm("        li      s2, child
                         tspawn  s3, s2
                         li      s4, 42
                         tput    s3, s1, s4
                         tjoin   s3
                         halt
        child:           add     s5, s1, s1
                         texit
        ");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(!has(&r, "W1001"), "{}", r.render(None, "t"));
    assert!(!has(&r, "W1002"));
}

#[test]
fn scalar_memory_bounds_fold_through_constants() {
    let p = asm("        li s1, 2000\n        lw s2, 0(s1)\n        halt\n");
    let r = analyze(&p, &MachineConfig::prototype()); // smem_words = 1024
    assert!(has(&r, "E2002"), "{:?}", codes(&r));
}

#[test]
fn local_memory_bounds_fold_through_broadcast() {
    let p = asm("        li      s1, 600
                         pmovs   p1, s1
                         plw     p2, 0(p1)
                         halt
        ");
    let r = analyze(&p, &MachineConfig::prototype()); // lmem_words = 512
    assert!(has(&r, "E2001"), "{:?}", codes(&r));
}

#[test]
fn masked_oob_access_is_only_a_warning() {
    let p = asm("        li      s1, 600
                         pmovs   p1, s1
                         pidx    p2
                         pclti   pf1, p2, 3
                         plw     p3, 0(p1) ?pf1
                         halt
        ");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(has(&r, "W2001"), "{:?}", codes(&r));
    assert!(!has(&r, "E2001"));
}

#[test]
fn self_join_is_an_error() {
    let p = asm("        tid s1\n        tjoin s1\n        halt\n");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(has(&r, "E3001"), "{:?}", codes(&r));
}

#[test]
fn out_of_range_thread_id_is_an_error() {
    let p = asm("        li s1, 99\n        tjoin s1\n        halt\n");
    let r = analyze(&p, &MachineConfig::prototype()); // 16 contexts
    assert!(has(&r, "E3002"), "{:?}", codes(&r));
}

#[test]
fn use_after_join_warns() {
    let p = asm("        li      s2, child
                         tspawn  s1, s2
                         tjoin   s1
                         tget    s3, s1, s4
                         halt
        child:           texit
        ");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(has(&r, "W3003"), "{:?}", codes(&r));
}

#[test]
fn join_without_any_spawn_warns() {
    let p = asm("        li s1, 2\n        tjoin s1\n        halt\n");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(has(&r, "W3004"), "{:?}", codes(&r));
}

#[test]
fn overwriting_a_live_handle_warns() {
    let p = asm("        li      s2, child
                         tspawn  s1, s2
                         li      s1, 0
                         halt
        child:           texit
        ");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(has(&r, "W3005"), "{:?}", codes(&r));
}

#[test]
fn copied_or_joined_handles_do_not_warn() {
    let p = asm("        li      s2, child
                         tspawn  s1, s2
                         mov     s3, s1
                         li      s1, 0
                         tjoin   s3
                         halt
        child:           texit
        ");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(!has(&r, "W3005"), "{:?}", codes(&r));
}

#[test]
fn always_false_mask_warns_and_suppresses_other_checks() {
    // pf3 is never set, so the store under it is a no-op — W4001, and no
    // bounds complaint even though the folded address is out of range.
    let p = asm("        li      s1, 600
                         pmovs   p1, s1
                         psw     p1, 0(p1) ?pf3
                         halt
        ");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(has(&r, "W4001"), "{:?}", codes(&r));
    assert!(!has(&r, "E2001") && !has(&r, "W2001"));
}

#[test]
fn mask_set_on_some_path_does_not_warn() {
    let p = asm("        pidx    p1
                         pclti   pf1, p1, 3
                         paddi   p2, p1, 1 ?pf1
                         halt
        ");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(!has(&r, "W4001"), "{:?}", codes(&r));
}

#[test]
fn dead_flag_store_warns() {
    // The first pclti is fully overwritten before any use; the second is
    // consumed by rcount. A flag still live at halt is a result, not a
    // dead store.
    let p = asm("        pidx    p1
                         pclti   pf1, p1, 3
                         pclti   pf1, p1, 5
                         rcount  s1, pf1
                         halt
        ");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(has(&r, "W4002"), "{:?}", codes(&r));
    assert_eq!(r.diagnostics.iter().filter(|d| d.code == "W4002").count(), 1);
    assert_eq!(r.diagnostics.iter().find(|d| d.code == "W4002").unwrap().pc, 1);
}

#[test]
fn flag_live_at_halt_is_a_result_not_a_dead_store() {
    let p = asm("        pidx    p1
                         pclti   pf1, p1, 3
                         rany    f2, pf1
                         halt
        ");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(!has(&r, "W4002"), "{:?}", codes(&r));
}

#[test]
fn flag_used_as_mask_is_not_dead() {
    let p = asm("        pidx    p1
                         pclti   pf1, p1, 3
                         paddi   p2, p1, 1 ?pf1
                         halt
        ");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(!has(&r, "W4002"), "{:?}", codes(&r));
}

#[test]
fn raw_hazard_chain_produces_notes() {
    let p = asm("        pidx    p1
                         rsum    s1, p1
                         padds   p2, p1, s1
                         rsum    s2, p2
                         sw      s2, 0(s0)
                         halt
        ");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(has(&r, "N5001"), "{:?}", codes(&r));
    // Notes never affect the verdict.
    assert!(r.is_clean(true), "{}", r.render(None, "t"));
}

#[test]
fn fusion_cut_is_explained() {
    let p = asm("        pidx    p1
                         paddi   p2, p1, 1
                         pclti   pf1, p2, 3
                         rcount  s1, pf1
                         halt
        ");
    let r = analyze(&p, &MachineConfig::prototype());
    let cut = r.diagnostics.iter().find(|d| d.code == "N5003").expect("fusion note");
    assert_eq!(cut.pc, 3, "cut at the reduction");
    assert!(cut.message.contains("reduction"), "{}", cut.message);
}

#[test]
fn unreached_fault_sites_stay_warnings() {
    // The oob load sits behind a data-dependent branch: W, not E.
    let p = asm("        pidx    p1
                         rany    f1, pf1
                         bt      f1, skip
                         li      s1, 2000
                         lw      s2, 0(s1)
        skip:            halt
        ");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(has(&r, "W2002"), "{:?}", codes(&r));
    assert!(!has(&r, "E2002"));
}

#[test]
fn severity_ordering_and_source_info_in_render() {
    let src = "        li      s1, 2000\n        lw      s2, 0(s1)\n";
    let p = asm(src);
    let r = analyze(&p, &MachineConfig::prototype());
    let text = r.render(Some(src), "buggy.asc");
    assert!(text.contains("error[E2002]"), "{text}");
    assert!(text.contains("buggy.asc:2"), "{text}");
    assert!(text.contains('^'), "caret excerpt expected:\n{text}");
    // Errors sort before warnings and notes.
    let sevs: Vec<Severity> = r.diagnostics.iter().map(|d| d.severity).collect();
    let mut sorted = sevs.clone();
    sorted.sort();
    assert_eq!(sevs, sorted);
}

#[test]
fn json_report_round_trips_through_the_strict_parser() {
    let p = asm("        li s1, 2000\n        lw s2, 0(s1)\n");
    let r = analyze(&p, &MachineConfig::prototype());
    let encoded = r.to_json().to_pretty();
    let parsed = asc_core::obs::Json::parse(&encoded).expect("valid JSON");
    assert_eq!(parsed.get("schema").and_then(|s| s.as_str()), Some("mtasc.lint.v1"));
    let diags = parsed.get("diagnostics").and_then(|d| d.as_arr()).unwrap();
    assert!(!diags.is_empty());
    for d in diags {
        let code = d.get("code").and_then(|c| c.as_str()).unwrap();
        assert!(crate::explain(code).is_some(), "code {code} missing from catalog");
    }
    let summary = parsed.get("summary").unwrap();
    assert_eq!(summary.get("errors").and_then(|e| e.as_u64()), Some(r.error_count() as u64));
}

#[test]
fn every_emittable_code_is_in_the_catalog() {
    // Exercise a grab-bag of buggy programs and check each emitted code
    // resolves in the catalog (so --explain always works).
    let sources = [
        "        li s1, 1\n",
        "        j 99\n        halt\n",
        "        add s1, s2, s3\n        halt\n",
        "        li s1, 2000\n        lw s2, 0(s1)\n        halt\n",
        "        tid s1\n        tjoin s1\n        halt\n",
        "        pidx p1\n        pclti pf1, p1, 3\n        halt\n",
    ];
    for src in sources {
        let r = analyze(&asm(src), &MachineConfig::prototype());
        for d in &r.diagnostics {
            assert!(crate::explain(d.code).is_some(), "{} not in catalog", d.code);
        }
    }
}

// ------------------------------------------------ family 6: inter-thread

#[test]
fn definite_write_write_race_is_an_error() {
    // Both writes are on straight-line prefixes with different folded
    // values, the spawn definitely happens, and no join intervenes.
    let p = asm("        li      s1, child
                         tspawn  s2, s1
                         li      s3, 1
                         sw      s3, 100(s0)
                         tjoin   s2
                         halt
        child:           li      s3, 2
                         sw      s3, 100(s0)
                         texit
        ");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(has(&r, "E6001"), "{}", r.render(None, "t"));
    assert!(!has(&r, "W6002"));
}

#[test]
fn read_write_conflict_is_a_warning() {
    let p = asm("        li      s1, child
                         tspawn  s2, s1
                         lw      s4, 100(s0)
                         tjoin   s2
                         halt
        child:           li      s3, 2
                         sw      s3, 100(s0)
                         texit
        ");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(has(&r, "W6002"), "{}", r.render(None, "t"));
    assert!(!has(&r, "E6001"));
}

#[test]
fn writes_of_the_same_folded_value_are_benign() {
    let p = asm("        li      s1, child
                         tspawn  s2, s1
                         li      s3, 7
                         sw      s3, 100(s0)
                         tjoin   s2
                         halt
        child:           li      s3, 7
                         sw      s3, 100(s0)
                         texit
        ");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(!has(&r, "E6001"), "{}", r.render(None, "t"));
    assert!(!has(&r, "W6002"));
}

#[test]
fn access_after_join_is_ordered_and_quiet() {
    let p = asm("        li      s1, child
                         tspawn  s2, s1
                         tjoin   s2
                         li      s3, 1
                         sw      s3, 100(s0)
                         halt
        child:           li      s3, 2
                         sw      s3, 100(s0)
                         texit
        ");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(!has(&r, "E6001"), "{}", r.render(None, "t"));
    assert!(!has(&r, "W6002"));
}

#[test]
fn disjoint_addresses_are_quiet() {
    let p = asm("        li      s1, child
                         tspawn  s2, s1
                         li      s3, 1
                         sw      s3, 100(s0)
                         tjoin   s2
                         halt
        child:           li      s3, 2
                         sw      s3, 101(s0)
                         texit
        ");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(!has(&r, "E6001"), "{}", r.render(None, "t"));
    assert!(!has(&r, "W6002"));
}

#[test]
fn local_memory_race_between_contexts_warns() {
    let p = asm("        li      s1, child
                         li      s4, 5
                         pmovs   p1, s4
                         tspawn  s2, s1
                         psw     p1, 0(p0)
                         tjoin   s2
                         halt
        child:           li      s5, 9
                         pmovs   p2, s5
                         psw     p2, 0(p0)
                         texit
        ");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(has(&r, "W6003"), "{}", r.render(None, "t"));
}

#[test]
fn sibling_threads_racing_each_other_warn() {
    let p = asm("        li      s1, left
                         tspawn  s2, s1
                         li      s1, right
                         tspawn  s3, s1
                         tjoin   s2
                         tjoin   s3
                         lw      s4, 50(s0)
                         halt
        left:            li      s5, 1
                         sw      s5, 50(s0)
                         texit
        right:           li      s5, 2
                         sw      s5, 50(s0)
                         texit
        ");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(has(&r, "E6001"), "{}", r.render(None, "t"));
    // The parent's own lw sits after both joins: no main-vs-child finding.
    let e: Vec<_> = r.diagnostics.iter().filter(|d| d.code == "E6001").collect();
    assert_eq!(e.len(), 1, "{}", r.render(None, "t"));
}

#[test]
fn transfer_to_running_thread_that_writes_the_register_warns() {
    let p = asm("        li      s1, child
                         tspawn  s2, s1
                         tget    s3, s2, s4
                         tjoin   s2
                         halt
        child:           li      s4, 9
                         texit
        ");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(has(&r, "W6004"), "{}", r.render(None, "t"));
}

#[test]
fn argument_passing_idiom_stays_quiet_in_family_6() {
    // tput into a register the child only reads: the sanctioned idiom.
    let p = asm("        li      s2, child
                         tspawn  s3, s2
                         li      s4, 42
                         tput    s3, s1, s4
                         tjoin   s3
                         halt
        child:           add     s5, s1, s1
                         texit
        ");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(!has(&r, "W6004"), "{}", r.render(None, "t"));
    assert!(!has(&r, "W6005"));
}

#[test]
fn raw_thread_id_under_live_spawn_warns() {
    let p = asm("        li      s1, child
                         tspawn  s2, s1
                         li      s3, 1
                         tjoin   s3
                         halt
        child:           texit
        ");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(has(&r, "W6005"), "{}", r.render(None, "t"));
}

#[test]
fn spawn_free_programs_have_no_family_6_findings() {
    let p = asm("        li s1, 1\n        sw s1, 0(s0)\n        lw s2, 0(s0)\n        halt\n");
    let r = analyze(&p, &MachineConfig::prototype());
    assert!(!codes(&r).iter().any(|c| c.starts_with("E6") || c.starts_with("W6")));
}

#[test]
fn kernel_corpus_is_race_clean() {
    // The shipped kernels must stay quiet under the race passes: the CI
    // lint gate runs with --deny warnings over the corpus.
    for (name, asm_src) in asc_kernels::harness::corpus() {
        let p = asm(&asm_src);
        let r = analyze(&p, &MachineConfig::prototype());
        let fam6: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.code.starts_with("E6") || d.code.starts_with("W6"))
            .collect();
        assert!(fam6.is_empty(), "{name}: {}", r.render(None, &name));
    }
}

#[test]
fn docs_catalog_table_matches_the_code_catalog() {
    // docs/static-analysis.md documents every code in a `| `X0000` |`
    // table row; the sets must stay in sync in both directions so
    // `--explain` and the docs never disagree.
    let docs =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/static-analysis.md");
    let text = std::fs::read_to_string(&docs).unwrap_or_else(|e| panic!("{docs:?}: {e}"));
    let mut documented = std::collections::BTreeSet::new();
    for line in text.lines() {
        let Some(rest) = line.strip_prefix("| `") else { continue };
        let Some((code, _)) = rest.split_once('`') else { continue };
        if code.len() == 4 + 1 && code[1..].chars().all(|c| c.is_ascii_digit()) {
            documented.insert(code.to_string());
        }
    }
    let catalog: std::collections::BTreeSet<String> =
        crate::CODES.iter().map(|i| i.code.to_string()).collect();
    assert_eq!(
        documented, catalog,
        "docs table and CODES catalog diverged (left = docs, right = catalog)"
    );
}
