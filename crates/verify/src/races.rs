//! Shared-state race detection on top of the MHP analysis (family 6).
//!
//! Conflicts are reported only when both effective addresses
//! constant-fold (the same address intervals the bounds pass uses), so
//! the pass stays quiet on address arithmetic it cannot see — missing a
//! race is a false negative the schedule-exploration harness can still
//! catch, while a spurious race warning on the kernel corpus would trip
//! the `--deny warnings` gate.
//!
//! Severity follows the family-6 contract (docs/static-analysis.md):
//! `E6001` means *provably schedule-divergent* — two definitely-executed
//! writes of different known values to the same scalar word from
//! definitely-concurrent threads — and is enforced by execution in
//! `tests/race_differential.rs` (every `E6001` fixture must produce
//! divergent architectural state across perturbed schedules). Everything
//! weaker is a warning.

use std::collections::{BTreeMap, BTreeSet};

use asc_isa::{Instr, SReg};

use crate::diag::{Diagnostic, Severity};
use crate::flow::{ContextStates, Input, PVal, SVal};
use crate::mhp;

/// One memory access with a constant-folded effective address.
struct Site {
    pc: u32,
    write: bool,
    /// Folded effective address (word index).
    addr: i64,
    /// Folded stored value, for writes whose operand folds.
    value: Option<u32>,
    text: String,
}

/// Scalar-register transfer site (`tget`/`tput`) in the boot thread.
struct Transfer {
    pc: u32,
    /// The spawn site of the handle being addressed.
    spawn_pc: u32,
    /// The remote register read (`tget src`) or written (`tput dst`).
    reg: SReg,
    /// True for `tput` (parent writes the remote register).
    put: bool,
    text: String,
}

/// Per-context facts the conflict enumeration works from.
struct CtxFacts {
    smem: Vec<Site>,
    lmem: Vec<Site>,
    /// Scalar registers the context may write anywhere in its code
    /// (bitmask; used by the transfer-protocol check).
    defs: u16,
    /// Straight-line prefix of the context.
    prefix: BTreeSet<u32>,
}

fn scalar_def(instr: &Instr) -> Option<SReg> {
    match *instr {
        Instr::SAlu { rd, .. }
        | Instr::SAluImm { rd, .. }
        | Instr::Li { rd, .. }
        | Instr::Lui { rd, .. }
        | Instr::Lw { rd, .. }
        | Instr::Jal { rd, .. }
        | Instr::TSpawn { rd, .. }
        | Instr::TGet { rd, .. }
        | Instr::TId { rd } => Some(rd),
        Instr::Reduce { sd, .. } | Instr::RCount { sd, .. } | Instr::RGet { sd, .. } => Some(sd),
        _ => None,
    }
}

fn facts(cs: &ContextStates, input: &Input) -> CtxFacts {
    let mut smem = Vec::new();
    let mut lmem = Vec::new();
    let mut defs = 0u16;
    for (&pc, st) in &cs.states {
        let Ok(instr) = &input.imem[pc as usize] else { continue };
        if let Some(rd) = scalar_def(instr) {
            if rd.index() != 0 {
                defs |= 1 << rd.index();
            }
        }
        let text = || asc_asm::disassemble(instr);
        match *instr {
            Instr::Lw { base, off, .. } => {
                if let SVal::Const(b) = st.sget(base) {
                    let addr = b.to_u32() as i64 + off as i64;
                    smem.push(Site { pc, write: false, addr, value: None, text: text() });
                }
            }
            Instr::Sw { rs, base, off } => {
                if let SVal::Const(b) = st.sget(base) {
                    let addr = b.to_u32() as i64 + off as i64;
                    let value = match st.sget(rs) {
                        SVal::Const(v) => Some(v.to_u32()),
                        _ => None,
                    };
                    smem.push(Site { pc, write: true, addr, value, text: text() });
                }
            }
            Instr::Plw { base, off, .. } => {
                if let PVal::Uniform(b) = st.pget(base) {
                    let addr = b.to_u32() as i64 + off as i64;
                    lmem.push(Site { pc, write: false, addr, value: None, text: text() });
                }
            }
            Instr::Psw { ps, base, off, .. } => {
                if let PVal::Uniform(b) = st.pget(base) {
                    let addr = b.to_u32() as i64 + off as i64;
                    let value = match st.pget(ps) {
                        PVal::Uniform(v) => Some(v.to_u32()),
                        _ => None,
                    };
                    lmem.push(Site { pc, write: true, addr, value, text: text() });
                }
            }
            _ => {}
        }
    }
    CtxFacts { smem, lmem, defs, prefix: mhp::must_prefix(cs, input) }
}

/// Do two sites conflict? At least one write to the same word, and not
/// the benign case of two writes that provably store the same value.
fn conflicting(a: &Site, b: &Site) -> bool {
    if a.addr != b.addr || (!a.write && !b.write) {
        return false;
    }
    !(a.write && b.write && a.value.is_some() && a.value == b.value)
}

/// Run the race passes. Returns nothing on spawn-free programs.
pub(crate) fn run(input: &Input, contexts: &[ContextStates]) -> Vec<Diagnostic> {
    if !input.has_spawn {
        return Vec::new();
    }
    let Some(main) = contexts.iter().find(|c| c.ctx.is_main) else { return Vec::new() };
    let m = mhp::analyze(main, contexts, input);
    if m.children.is_empty() && !m.conservative {
        return Vec::new();
    }

    let main_facts = facts(main, input);
    // One fact set per distinct child entry, plus its spawn sites.
    let mut child_facts: BTreeMap<u32, (CtxFacts, Vec<u32>)> = BTreeMap::new();
    for cs in contexts.iter().filter(|c| !c.ctx.is_main) {
        let spawners = m.children.iter().filter(|&(_, &e)| e == cs.ctx.entry).map(|(&s, _)| s);
        child_facts.insert(cs.ctx.entry, (facts(cs, input), spawners.collect()));
    }

    let mut out = Vec::new();
    let mut emitted: BTreeSet<(&'static str, u32)> = BTreeSet::new();
    let mut emit = |out: &mut Vec<Diagnostic>,
                    severity: Severity,
                    code: &'static str,
                    pc: u32,
                    message: String,
                    notes: Vec<String>| {
        if emitted.insert((code, pc)) {
            let mut d = Diagnostic::new(severity, code, pc, message);
            d.notes = notes;
            out.push(d);
        }
    };

    // ---- scalar-memory and PE-local-memory conflicts -----------------------
    // boot thread vs. each child
    for (entry, (child, spawners)) in &child_facts {
        let window = |pc: u32| m.conservative || spawners.iter().any(|&s| m.live(s, pc));
        let definite_spawner =
            |pc: u32| spawners.iter().any(|&s| m.definite_spawns.contains(&s) && m.live(s, pc));
        for a in &main_facts.smem {
            for b in &child.smem {
                if !conflicting(a, b) || !window(a.pc) {
                    continue;
                }
                let proven = !m.conservative
                    && a.write
                    && b.write
                    && a.value.is_some()
                    && b.value.is_some()
                    && main_facts.prefix.contains(&a.pc)
                    && child.prefix.contains(&b.pc)
                    && definite_spawner(a.pc);
                let (sev, code) =
                    if proven { (Severity::Error, "E6001") } else { (Severity::Warning, "W6002") };
                let what = if a.write && b.write { "is also written" } else { "is accessed" };
                emit(
                    &mut out,
                    sev,
                    code,
                    a.pc,
                    format!(
                        "`{}` races on scalar memory word {}: the word {} by `{}` (pc {}) in \
                         the thread spawned at entry pc {}, with no join ordering the two",
                        a.text, a.addr, what, b.text, b.pc, entry
                    ),
                    vec![if proven {
                        "both writes definitely execute with different known values, so the \
                         final word is decided by the schedule alone (verify with `mtasc lint \
                         --schedules N`)"
                            .to_string()
                    } else {
                        "the access order depends on the schedule; join the thread (or prove \
                         the addresses disjoint) before touching the word"
                            .to_string()
                    }],
                );
            }
        }
        for a in &main_facts.lmem {
            for b in &child.lmem {
                if conflicting(a, b) && window(a.pc) {
                    emit(
                        &mut out,
                        Severity::Warning,
                        "W6003",
                        a.pc,
                        format!(
                            "`{}` races on PE-local memory word {}: local memory is shared by \
                             all thread contexts on a PE, and `{}` (pc {}) in the thread \
                             spawned at entry pc {} touches the same word",
                            a.text, a.addr, b.text, b.pc, entry
                        ),
                        vec!["per-PE local memory has one plane per PE, not per thread; \
                              partition the address space per context or join first"
                            .to_string()],
                    );
                }
            }
        }
    }

    // child vs. child (distinct entries, same entry spawned twice, or a
    // spawn looping while its child is live)
    let entries: Vec<u32> = child_facts.keys().copied().collect();
    for (i, &e1) in entries.iter().enumerate() {
        for &e2 in &entries[i..] {
            let (c1, s1) = &child_facts[&e1];
            let (c2, s2) = &child_facts[&e2];
            let same = e1 == e2;
            // Two instances of the same entry require either two spawn
            // sites or a self-parallel (looping) spawn. Conservative
            // mode assumes distinct entries overlap but not that any
            // entry overlaps itself — self-overlap needs a loop the
            // window analysis must actually see.
            let pair_live = if same {
                s1.len() > 1 || s1.iter().any(|s| m.self_parallel.contains(s))
            } else {
                s1.iter().any(|&a| s2.iter().any(|&b| m.overlap(a, b)))
            };
            if !pair_live {
                continue;
            }
            let both_definite = |pc_a: u32, pc_b: u32| {
                !same
                    && !m.conservative
                    && c1.prefix.contains(&pc_a)
                    && c2.prefix.contains(&pc_b)
                    && s1.iter().any(|s| m.definite_spawns.contains(s))
                    && s2.iter().any(|s| m.definite_spawns.contains(s))
            };
            for a in &c1.smem {
                for b in &c2.smem {
                    if !conflicting(a, b) {
                        continue;
                    }
                    let proven = a.write
                        && b.write
                        && a.value.is_some()
                        && b.value.is_some()
                        && a.value != b.value
                        && both_definite(a.pc, b.pc);
                    let (sev, code) = if proven {
                        (Severity::Error, "E6001")
                    } else {
                        (Severity::Warning, "W6002")
                    };
                    let other = if same {
                        format!("another instance of the same spawned code (entry pc {e1})")
                    } else {
                        format!("the thread spawned at entry pc {e2}")
                    };
                    emit(
                        &mut out,
                        sev,
                        code,
                        a.pc.min(b.pc),
                        format!(
                            "`{}` races on scalar memory word {}: `{}` (pc {}) in {} touches \
                             the same word while both threads may run in parallel",
                            a.text, a.addr, b.text, b.pc, other
                        ),
                        Vec::new(),
                    );
                }
            }
            for a in &c1.lmem {
                for b in &c2.lmem {
                    if !conflicting(a, b) {
                        continue;
                    }
                    emit(
                        &mut out,
                        Severity::Warning,
                        "W6003",
                        a.pc.min(b.pc),
                        format!(
                            "`{}` races on PE-local memory word {}: local memory is shared by \
                             all thread contexts on a PE, and `{}` (pc {}) in the thread \
                             spawned at entry pc {} touches the same word",
                            a.text, a.addr, b.text, b.pc, e2
                        ),
                        Vec::new(),
                    );
                }
            }
        }
    }

    // ---- unsynchronized register transfers (W6004) -------------------------
    let mut transfers = Vec::new();
    for (&pc, st) in &main.states {
        let Ok(instr) = &input.imem[pc as usize] else { continue };
        let (ta, reg, put) = match *instr {
            Instr::TGet { ta, src, .. } => (ta, src, false),
            Instr::TPut { ta, dst, .. } => (ta, dst, true),
            _ => continue,
        };
        if let SVal::Handle { spawn_pc, released: false, .. } = st.sget(ta) {
            transfers.push(Transfer { pc, spawn_pc, reg, put, text: asc_asm::disassemble(instr) });
        }
    }
    for t in &transfers {
        let Some(&entry) = m.children.get(&t.spawn_pc) else { continue };
        let Some((child, _)) = child_facts.get(&entry) else { continue };
        if t.reg.index() == 0 || child.defs & (1 << t.reg.index()) == 0 {
            continue; // the sanctioned argument-passing idiom: child only reads
        }
        if !m.live(t.spawn_pc, t.pc) {
            continue;
        }
        let (verb, how) = if t.put {
            (
                "writes",
                "also writes it, so the transfer and the thread's own write land in \
              schedule order",
            )
        } else {
            ("reads", "still writes it, so the value read depends on the schedule")
        };
        emit(
            &mut out,
            Severity::Warning,
            "W6004",
            t.pc,
            format!(
                "`{}` {} register s{} of the running thread spawned at pc {}, but that \
                 thread {}",
                t.text,
                verb,
                t.reg.index(),
                t.spawn_pc,
                how
            ),
            vec!["inter-thread register transfers are serialized at issue but not ordered \
                  against the target's own instructions; synchronize with `tjoin` or flags \
                  first"
                .to_string()],
        );
    }

    // ---- raw thread ids under live spawns (W6005) --------------------------
    for (&pc, st) in &main.states {
        let Ok(instr) = &input.imem[pc as usize] else { continue };
        let ta = match *instr {
            Instr::TJoin { ra } => ra,
            Instr::TGet { ta, .. } | Instr::TPut { ta, .. } => ta,
            _ => continue,
        };
        let SVal::Const(c) = st.sget(ta) else { continue };
        let tid = c.to_u32();
        if tid as usize >= input.cfg.threads {
            continue; // out of range: that's E3002/W3002's finding
        }
        let live = m.conservative || m.live_at.get(&pc).is_some_and(|l| !l.is_empty());
        if !live {
            continue; // no spawn can be live: W3004 covers the no-spawn case
        }
        emit(
            &mut out,
            Severity::Warning,
            "W6005",
            pc,
            format!(
                "`{}` addresses thread context {} by raw id while spawned threads may still \
                 be running",
                asc_asm::disassemble(instr),
                tid
            ),
            vec!["context ids are allocation-order-dependent: a fast worker may exit and its \
                  id be reused by a later spawn under another schedule; use the handle \
                  returned by tspawn"
                .to_string()],
        );
    }

    out
}
