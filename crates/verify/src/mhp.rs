//! May-happen-in-parallel analysis over the per-context CFGs.
//!
//! Thread regions are delimited by the constant-folded `tspawn`/`tjoin`
//! edges of the boot thread: a spawn at pc `S` opens a concurrency window
//! that every later boot-thread pc belongs to until a `tjoin` through the
//! handle of `S` closes it on that path. The window computation is a
//! forward *may* fixpoint (union over paths): a child counts as live at a
//! pc unless **every** path into that pc joined it, which is exactly the
//! happens-before order the machine guarantees (`tjoin` is the only
//! inter-thread edge that orders memory accesses; `tput`/`tget` are
//! serialized at issue but impose no ordering on anything else).
//!
//! Spawns whose target register does not constant-fold (worker entry
//! stubs reached through an incremented function-pointer register, as in
//! the batch kernel) put the analysis in *conservative* mode: every
//! context is assumed concurrent with every other, and nothing is ever
//! provable (`definite_spawns` stays empty), so such programs can earn
//! warnings but never `E6001`. The same closure applies when a spawned
//! context itself spawns (nested fork), where the boot thread's window
//! analysis no longer covers all edges.

use std::collections::{BTreeMap, BTreeSet};

use asc_isa::Instr;

use crate::flow::{flow_of, successors, ContextStates, Flow, Input, SVal};

/// Result of the may-happen-in-parallel analysis.
pub(crate) struct Mhp {
    /// For each boot-thread pc: spawn sites whose child may still be
    /// running when the boot thread is *about to execute* that pc.
    pub live_at: BTreeMap<u32, BTreeSet<u32>>,
    /// Constant-folded spawn sites of the boot thread: spawn pc → child
    /// entry pc.
    pub children: BTreeMap<u32, u32>,
    /// Spawn sites that may be re-executed while their own child is
    /// still live (a spawn in a loop): two instances of the same child
    /// code may run in parallel with each other.
    pub self_parallel: BTreeSet<u32>,
    /// Spawn sites on the boot thread's straight-line prefix that are
    /// guaranteed a free context slot: these spawns definitely happen.
    pub definite_spawns: BTreeSet<u32>,
    /// An indirect (unfoldable) or nested spawn was seen: assume every
    /// context pair concurrent, prove nothing.
    pub conservative: bool,
}

impl Mhp {
    /// May the child spawned at `spawn_pc` run while the boot thread is
    /// at `pc`?
    pub fn live(&self, spawn_pc: u32, pc: u32) -> bool {
        self.conservative || self.live_at.get(&pc).is_some_and(|s| s.contains(&spawn_pc))
    }

    /// May the children of two distinct spawn sites overlap in time?
    /// (Both live at some common boot-thread pc.)
    pub fn overlap(&self, a: u32, b: u32) -> bool {
        self.conservative
            || self.live_at.values().any(|live| live.contains(&a) && live.contains(&b))
    }
}

/// The straight-line prefix of a context: every pc the context executes
/// before the first control-flow uncertainty (unknown branch, indirect
/// jump, undecodable word). Unlike `flow::must_reach` this walk does not
/// stop at `tspawn` — it answers "does this instruction execute in every
/// schedule (barring an earlier fault)", which is what proving a race
/// divergent needs, not "does it execute before anything else can halt
/// the machine".
pub(crate) fn must_prefix(cs: &ContextStates, input: &Input) -> BTreeSet<u32> {
    let mut seen = BTreeSet::new();
    let mut pc = cs.ctx.entry as i64;
    let len = input.len() as i64;
    loop {
        if !(0..len).contains(&pc) || !seen.insert(pc as u32) {
            break;
        }
        let pc32 = pc as u32;
        let Some(st) = cs.states.get(&pc32) else { break };
        let Ok(instr) = &input.imem[pc as usize] else { break };
        match flow_of(pc32, instr, st, input) {
            Flow::Stop | Flow::Indirect(_) => break,
            Flow::Fall => pc += 1,
            Flow::Jump(t) => pc = t,
            Flow::Branch { taken, known } => match known {
                Some(true) => pc = taken,
                Some(false) => pc += 1,
                None => break,
            },
        }
    }
    seen
}

/// Run the analysis. `main` is the boot context's converged fixpoint;
/// `contexts` every discovered context (used only to detect nested
/// spawns).
pub(crate) fn analyze(main: &ContextStates, contexts: &[ContextStates], input: &Input) -> Mhp {
    let mut children = BTreeMap::new();
    let mut conservative = false;
    for cs in contexts {
        for (&pc, st) in &cs.states {
            let Ok(Instr::TSpawn { ra, .. }) = &input.imem[pc as usize] else { continue };
            match st.sget(*ra) {
                SVal::Const(c) if cs.ctx.is_main && c.to_u32() < input.len() => {
                    children.insert(pc, c.to_u32());
                }
                // a spawn from a *spawned* context, or a target the
                // constant propagation cannot fold: conservative closure
                _ => conservative = true,
            }
        }
    }

    // Forward may-live fixpoint over the boot thread's CFG.
    let mut live_at: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    let mut work = Vec::new();
    if main.states.contains_key(&main.ctx.entry) {
        live_at.insert(main.ctx.entry, BTreeSet::new());
        work.push(main.ctx.entry);
    }
    // Finite lattice (sets of spawn pcs, ordered by inclusion), so this
    // converges; cap the work anyway, falling back to the conservative
    // closure if the cap is ever hit.
    let mut budget = (input.len() as usize + 1) * 64;
    while let Some(pc) = work.pop() {
        if budget == 0 {
            conservative = true;
            break;
        }
        budget -= 1;
        let Some(st) = main.states.get(&pc) else { continue };
        let Ok(instr) = &input.imem[pc as usize] else { continue };
        let mut out = live_at[&pc].clone();
        match instr {
            Instr::TSpawn { .. } if children.contains_key(&pc) => {
                out.insert(pc);
            }
            // A join through a folded handle closes that spawn's window
            // on this path. Joins through reloaded (escaped) handles
            // don't fold, so the window conservatively stays open.
            Instr::TJoin { ra } => {
                if let SVal::Handle { spawn_pc, .. } = st.sget(*ra) {
                    out.remove(&spawn_pc);
                }
            }
            _ => {}
        }
        let flow = flow_of(pc, instr, st, input);
        for succ in successors(pc, &flow, input.len()) {
            match live_at.get_mut(&succ) {
                Some(existing) => {
                    let before = existing.len();
                    existing.extend(out.iter().copied());
                    if existing.len() != before {
                        work.push(succ);
                    }
                }
                None => {
                    live_at.insert(succ, out.clone());
                    work.push(succ);
                }
            }
        }
    }

    let self_parallel: BTreeSet<u32> = children
        .keys()
        .filter(|&&s| live_at.get(&s).is_some_and(|live| live.contains(&s)))
        .copied()
        .collect();

    // A spawn definitely happens when it sits on the boot thread's
    // straight-line prefix *and* a context slot is guaranteed free (at
    // most threads-1 children can be live when it executes).
    let definite_spawns: BTreeSet<u32> = if conservative {
        BTreeSet::new()
    } else {
        let prefix = must_prefix(main, input);
        children
            .keys()
            .filter(|&&s| {
                prefix.contains(&s)
                    && live_at.get(&s).is_none_or(|live| live.len() + 1 < input.cfg.threads)
            })
            .copied()
            .collect()
    };

    Mhp { live_at, children, self_parallel, definite_spawns, conservative }
}
