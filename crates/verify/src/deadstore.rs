//! Backward liveness over the flag register files (W4002).
//!
//! Flags are the natural target for dead-store detection in an
//! associative ISA: a comparison that nobody branches on, masks with, or
//! reduces is almost always a typoed flag number or a leftover search.
//! General-purpose registers are deliberately *not* checked — long-lived
//! values in registers at `halt` are how MTASC programs return results.
//!
//! The CFG here is the *unfolded* one (both arms of every conditional
//! branch), which only over-approximates liveness — a safe direction for
//! a warning pass. Every flag is treated as live at `halt`/`texit`: the
//! host (or the joining parent) can read flags after the program stops,
//! so "still set at the end" is a result, not a dead store. Only stores
//! provably overwritten before any use are reported.

use asc_isa::{Instr, Mask, Operand, RegClass, NUM_FLAGS};

use crate::diag::{Diagnostic, Severity};
use crate::flow::Input;

/// Bit layout of the liveness set: bits 0..8 scalar flags, 8..16 parallel
/// flags.
fn flag_bit(op: Operand) -> Option<u16> {
    match op.class {
        RegClass::SFlag => Some(1 << op.index),
        RegClass::PFlag => Some(1 << (op.index as u16 + NUM_FLAGS as u16)),
        _ => None,
    }
}

/// A flag def only *kills* (fully overwrites) its register when it is a
/// scalar write or a parallel write under the all-PEs mask; a masked
/// parallel write merges with the old value, so the old value stays live
/// through it.
fn kills(instr: &Instr) -> bool {
    match instr.mask() {
        None | Some(Mask::All) => true,
        Some(Mask::Flag(_)) => false,
    }
}

/// Compute W4002 diagnostics: flag values computed but never used.
pub(crate) fn run(input: &Input, reachable: &[bool]) -> Vec<Diagnostic> {
    let len = input.imem.len();
    // Conservative successor lists (no constant folding).
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); len];
    // Everything-is-live sinks: program/thread end (flags are readable
    // results there) and indirect jumps with no candidate targets.
    let mut all_live = vec![false; len];
    for (pc, slot) in input.imem.iter().enumerate() {
        let Ok(instr) = slot else { continue };
        let push = |t: i64, v: &mut Vec<usize>| {
            if (0..len as i64).contains(&t) {
                v.push(t as usize);
            }
        };
        match *instr {
            Instr::Halt | Instr::TExit => all_live[pc] = true,
            Instr::J { target } | Instr::Jal { target, .. } => {
                push(target as i64, &mut succs[pc]);
            }
            Instr::Bt { off, .. } | Instr::Bf { off, .. } => {
                push(pc as i64 + 1, &mut succs[pc]);
                push(pc as i64 + 1 + off as i64, &mut succs[pc]);
            }
            Instr::Jr { .. } => {
                let cands: &[u32] =
                    if !input.jal_returns.is_empty() { &input.jal_returns } else { &input.labels };
                if cands.is_empty() {
                    // No idea where this goes: treat every flag as live.
                    all_live[pc] = true;
                } else {
                    for &c in cands {
                        push(c as i64, &mut succs[pc]);
                    }
                }
            }
            _ => push(pc as i64 + 1, &mut succs[pc]),
        }
    }

    // Backward fixpoint on live-in sets.
    let mut live_in: Vec<u16> = vec![0; len];
    let mut changed = true;
    let mut rounds = 0usize;
    while changed && rounds < 4 * NUM_FLAGS * 2 + 8 {
        changed = false;
        rounds += 1;
        for pc in (0..len).rev() {
            let Ok(instr) = &input.imem[pc] else { continue };
            let mut out: u16 = if all_live[pc] { u16::MAX } else { 0 };
            for &s in &succs[pc] {
                out |= live_in[s];
            }
            let mut inn = out;
            if kills(instr) {
                for d in instr.defs() {
                    if let Some(bit) = flag_bit(d) {
                        inn &= !bit;
                    }
                }
            }
            for u in instr.uses() {
                if let Some(bit) = flag_bit(u) {
                    inn |= bit;
                }
            }
            if inn != live_in[pc] {
                live_in[pc] = inn;
                changed = true;
            }
        }
    }

    let mut diags = Vec::new();
    for pc in 0..len {
        if !reachable[pc] {
            continue;
        }
        let Ok(instr) = &input.imem[pc] else { continue };
        if !kills(instr) {
            continue;
        }
        let mut out: u16 = if all_live[pc] { u16::MAX } else { 0 };
        for &s in &succs[pc] {
            out |= live_in[s];
        }
        for d in instr.defs() {
            let Some(bit) = flag_bit(d) else { continue };
            if out & bit == 0 {
                let name = match d.class {
                    RegClass::SFlag => format!("f{}", d.index),
                    _ => format!("pf{}", d.index),
                };
                diags.push(
                    Diagnostic::new(
                        Severity::Warning,
                        "W4002",
                        pc as u32,
                        format!(
                            "`{}` computes {name}, but the value is overwritten before any use",
                            asc_asm::disassemble(instr)
                        ),
                    )
                    .with_note(
                        "no instruction reads it as an operand, branch condition, or \
                                activity mask before the next full write to the same flag",
                    ),
                );
            }
        }
    }
    diags
}
