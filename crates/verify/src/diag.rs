//! Diagnostic representation and the stable code catalog.
//!
//! Every finding the analyzer can produce has a stable code (`Exxxx`,
//! `Wxxxx`, `Nxxxx`) so scripts can filter on them and `mtasc lint
//! --explain CODE` can print the long-form description. The numbering is
//! grouped by pass family:
//!
//! * `0xxx` — control flow and decode (off-end execution, bad targets,
//!   missing functional units, unreachable code)
//! * `1xxx` — uninitialized reads
//! * `2xxx` — memory bounds
//! * `3xxx` — thread lifecycle
//! * `4xxx` — mask emptiness and dead stores
//! * `5xxx` — performance notes (hazards, fusion cuts)

use std::fmt;

use asc_asm::SrcSpan;

/// How bad a finding is.
///
/// The severity contract is load-bearing: an [`Severity::Error`] is only
/// emitted when the analyzer can prove the instruction **will fault at
/// runtime** on every execution that reaches the end of the program — the
/// differential test-suite runs every error-flagged program on the
/// cycle-accurate machine and checks that `run()` really fails. Anything
/// the analyzer merely suspects is a [`Severity::Warning`];
/// [`Severity::Note`] is purely informational (performance diagnostics)
/// and never affects the exit status, even under `--deny warnings`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Proven runtime fault on the path that reaches this instruction.
    Error,
    /// Suspected bug or smell; the program may still run cleanly.
    Warning,
    /// Informational performance diagnostic.
    Note,
}

impl Severity {
    /// Lower-case label used by the renderer and the JSON encoding.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One finding, anchored to an instruction address (and, when the program
/// came from the assembler, a source line and span).
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Error / warning / note.
    pub severity: Severity,
    /// Stable catalog code (`E2001`, `W1002`, `N5003`, ...).
    pub code: &'static str,
    /// Instruction address the finding is about.
    pub pc: u32,
    /// 1-based source line, or 0 when the program has no source map.
    pub line: u32,
    /// Source span of the instruction's mnemonic (col 0 = unknown).
    pub span: SrcSpan,
    /// One-line human message.
    pub message: String,
    /// Additional context lines ("help:" / "note:" in the rendering).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Construct a diagnostic with no source info (filled in later from
    /// the program's source map) and no notes.
    pub fn new(severity: Severity, code: &'static str, pc: u32, message: String) -> Diagnostic {
        Diagnostic {
            severity,
            code,
            pc,
            line: 0,
            span: SrcSpan { line: 0, col: 0, len: 0 },
            message,
            notes: Vec::new(),
        }
    }

    /// Append a context note, builder-style.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }
}

/// Catalog entry for one diagnostic code: what it means and why it fires.
#[derive(Debug, Clone, Copy)]
pub struct CodeInfo {
    /// The stable code.
    pub code: &'static str,
    /// Severity the code is emitted at.
    pub severity: Severity,
    /// One-line summary.
    pub summary: &'static str,
    /// Long-form explanation with a minimal triggering example, shown by
    /// `mtasc lint --explain CODE`.
    pub explanation: &'static str,
}

/// The full diagnostic catalog, in code order. `docs/static-analysis.md`
/// documents the same list; a test checks the two stay in sync.
pub const CODES: &[CodeInfo] = &[
    CodeInfo {
        code: "E0001",
        severity: Severity::Error,
        summary: "execution runs off the end of the program",
        explanation: "Control definitely reaches the instruction after the last one in the \
                      program. Instruction memory holds exactly the assembled program, so the \
                      very next fetch faults with PcOutOfRange. Triggered by a program whose \
                      final reachable instruction is not `halt`, `texit`, or a jump:\n\n    \
                      li   s1, 1\n    ; no halt -- falls off the end\n\nW0001 is the \
                      maybe-variant: some path (e.g. one arm of a conditional branch) falls \
                      off the end.",
    },
    CodeInfo {
        code: "W0001",
        severity: Severity::Warning,
        summary: "execution may run off the end of the program",
        explanation: "Some path through the program falls through past the last instruction, \
                      which faults with PcOutOfRange if taken. See E0001 for the \
                      definite-variant.",
    },
    CodeInfo {
        code: "E0002",
        severity: Severity::Error,
        summary: "control-transfer target outside the program",
        explanation: "A branch or jump whose target the analyzer resolved statically points \
                      outside the assembled program, and the instruction is definitely \
                      reached and definitely taken. Fetching the target faults with \
                      PcOutOfRange:\n\n    j    99        ; program has 3 instructions\n\n\
                      W0002 is the maybe-variant (a conditional branch that might not be \
                      taken, or a site the analyzer cannot prove reached).",
    },
    CodeInfo {
        code: "W0002",
        severity: Severity::Warning,
        summary: "control-transfer target may be outside the program",
        explanation: "A statically resolved branch/jump target lies outside the program but \
                      the transfer is conditional or not provably reached. See E0002.",
    },
    CodeInfo {
        code: "E0003",
        severity: Severity::Error,
        summary: "multiply/divide instruction but the machine has no such unit",
        explanation: "The instruction needs the multiplier or divider, the machine \
                      configuration has that unit set to None (the paper's base prototype \
                      has neither), and the instruction is definitely reached. Issue faults \
                      with MissingUnit:\n\n    mul  s1, s2, s3   ; MachineConfig::prototype() \
                      has no multiplier\n\nW0003 is the maybe-variant.",
    },
    CodeInfo {
        code: "W0003",
        severity: Severity::Warning,
        summary: "multiply/divide instruction may hit a missing functional unit",
        explanation: "A mul/div instruction exists on some path but the machine has no \
                      multiplier/divider. See E0003.",
    },
    CodeInfo {
        code: "E0004",
        severity: Severity::Error,
        summary: "program does not fit in instruction memory",
        explanation: "The program is longer than the configured `imem_words`; loading it \
                      fails before the first cycle.",
    },
    CodeInfo {
        code: "E0005",
        severity: Severity::Error,
        summary: "undecodable instruction word",
        explanation: "A word in the raw instruction stream does not decode to any MTASC \
                      instruction and is definitely reached; fetch faults with \
                      IllegalInstruction. Only raw word streams can trigger this — assembled \
                      programs are well-formed by construction. W0005 is the maybe-variant.",
    },
    CodeInfo {
        code: "W0005",
        severity: Severity::Warning,
        summary: "undecodable instruction word on some path",
        explanation: "A reachable but not provably executed word fails to decode. See E0005.",
    },
    CodeInfo {
        code: "W0006",
        severity: Severity::Warning,
        summary: "unreachable instruction",
        explanation: "No path from any entry point (boot thread at pc 0, or a statically \
                      resolved tspawn target) reaches this instruction:\n\n    j    done\n    \
                    li   s1, 1     ; unreachable\n  done:\n    halt",
    },
    CodeInfo {
        code: "W1001",
        severity: Severity::Warning,
        summary: "read of a register that is never initialized",
        explanation: "No path from the thread's entry writes this register before the read. \
                      Registers are zeroed when a thread starts, so this is not a fault — \
                      the read returns 0 — but it almost always means a missing `li`/write \
                      or a typoed register number:\n\n    add  s1, s2, s3   ; s2 and s3 never \
                      written anywhere\n\nIn spawned threads, scalar GPRs are exempt: parents \
                      pass arguments by `tput` after `tspawn`, which the analyzer cannot see.",
    },
    CodeInfo {
        code: "W1002",
        severity: Severity::Warning,
        summary: "read of a possibly-uninitialized register",
        explanation: "The register is written on some paths to this read but not all — \
                      typically one arm of a branch initializes it and the other forgets:\n\n    \
                      bt   f1, skip\n    li   s1, 5\n  skip:\n    add  s2, s1, s1   ; s1 \
                      uninitialized when f1 was true\n\nSee W1001 for the never-written case.",
    },
    CodeInfo {
        code: "E2001",
        severity: Severity::Error,
        summary: "parallel local-memory access out of bounds",
        explanation: "A `plw`/`psw` whose effective address the analyzer folded to a \
                      constant (same in every PE) lies outside `lmem_words`, the instruction \
                      runs under the all-PEs mask, and it is definitely reached — so at least \
                      one PE definitely faults:\n\n    pli  p1, 100\n    plw  p2, 0(p1)   ; \
                      lmem_words = 64\n\nW2001 is the maybe-variant (masked access, or not \
                      provably reached).",
    },
    CodeInfo {
        code: "W2001",
        severity: Severity::Warning,
        summary: "parallel local-memory access may be out of bounds",
        explanation: "A statically folded plw/psw address is outside local memory, but the \
                      access is masked (no PE might participate) or the site is not provably \
                      reached. See E2001.",
    },
    CodeInfo {
        code: "E2002",
        severity: Severity::Error,
        summary: "scalar memory access out of bounds",
        explanation: "An `lw`/`sw` whose effective address folded to a constant lies outside \
                      `smem_words` and the instruction is definitely reached:\n\n    li   s1, \
                      2000\n    lw   s2, 0(s1)   ; smem_words = 1024\n\nW2002 is the \
                      maybe-variant.",
    },
    CodeInfo {
        code: "W2002",
        severity: Severity::Warning,
        summary: "scalar memory access may be out of bounds",
        explanation: "A statically folded lw/sw address is outside scalar memory on a path \
                      the analyzer cannot prove executed. See E2002.",
    },
    CodeInfo {
        code: "E3001",
        severity: Severity::Error,
        summary: "thread joins itself",
        explanation: "A `tjoin` whose thread-id operand folds to the executing thread's own \
                      id (the boot thread is id 0), definitely reached. The machine faults \
                      with InvalidThread — a thread can never observe its own exit:\n\n    \
                      tid    s1\n    tjoin  s1",
    },
    CodeInfo {
        code: "E3002",
        severity: Severity::Error,
        summary: "thread id out of range",
        explanation: "A `tjoin`/`tget`/`tput` whose thread-id operand folds to a constant \
                      >= the configured number of hardware thread contexts, definitely \
                      reached. Faults with InvalidThread:\n\n    li     s1, 99\n    tjoin  \
                      s1              ; machine has 16 contexts\n\nW3002 is the maybe-variant.",
    },
    CodeInfo {
        code: "W3002",
        severity: Severity::Warning,
        summary: "thread id may be out of range",
        explanation: "A constant thread id >= the context count on a path not provably \
                      executed. See E3002.",
    },
    CodeInfo {
        code: "W3003",
        severity: Severity::Warning,
        summary: "use of a thread handle after joining it",
        explanation: "The register still holds a handle from `tspawn`, but the thread has \
                      already been joined on this path — its context is released and the id \
                      may have been re-allocated to an unrelated thread:\n\n    tspawn s1, \
                      s2\n    tjoin  s1\n    tget   s3, s1, s4   ; s1's thread is gone",
    },
    CodeInfo {
        code: "W3004",
        severity: Severity::Warning,
        summary: "inter-thread operation but the program never spawns a thread",
        explanation: "A `tjoin`/`tget`/`tput` targets a thread id, yet no `tspawn` appears \
                      anywhere in the program — the target context was never allocated. \
                      Joining a never-allocated id silently succeeds and tget reads zeros, \
                      which is rarely what was meant.",
    },
    CodeInfo {
        code: "W3005",
        severity: Severity::Warning,
        summary: "live thread handle overwritten",
        explanation: "A register holding the only copy of a not-yet-joined spawn handle is \
                      overwritten; the thread can no longer be joined or communicated with \
                      (handle leak):\n\n    tspawn s1, s2\n    li     s1, 0    ; handle lost, \
                      thread still running\n\nCopying the handle to another register or \
                      storing it with `sw` first suppresses the warning.",
    },
    CodeInfo {
        code: "W3006",
        severity: Severity::Warning,
        summary: "tspawn entry point outside the program",
        explanation: "The spawn-target register folds to a constant address outside the \
                      program. If the spawn succeeds, the new thread's first fetch faults \
                      with PcOutOfRange. (A warning, not an error: the spawn itself can fail \
                      if no context is free, in which case no thread runs.)",
    },
    CodeInfo {
        code: "W4001",
        severity: Severity::Warning,
        summary: "activity mask is statically always false",
        explanation: "The `?pfN` mask flag is false in every PE on every path to this \
                      instruction (parallel flags start all-false and nothing set it), so \
                      the instruction is a no-op:\n\n    padds p1, p1, s1 ?pf3   ; pf3 never \
                      written\n\nReductions under an empty mask produce the operation's \
                      identity element.",
    },
    CodeInfo {
        code: "W4002",
        severity: Severity::Warning,
        summary: "flag store is dead: overwritten before any use",
        explanation: "A comparison or flag-logic result is dead: no instruction reads the \
                      flag (as an operand, branch condition, or activity mask) before the \
                      next full write to it:\n\n    pfclr pf1           ; dead — pceqs fully \
                      overwrites pf1\n    pceqs pf1, p1, s2\n\nEither the store is redundant \
                      (a leftover clear before an unmasked write is the common case) or the \
                      flag register is typoed at one of the two sites. A flag still set at \
                      `halt` is *not* reported: the host can read it as a result.",
    },
    CodeInfo {
        code: "N5001",
        severity: Severity::Note,
        summary: "read-after-write dependency stall",
        explanation: "Issuing back-to-back, this instruction waits for a result that is \
                      still in the broadcast/reduction pipeline — the exact hazard the \
                      paper's fine-grain multithreading is designed to hide. The note \
                      reports the producing pc and the stall length from the machine's own \
                      timing model. Single-threaded programs can instead hoist independent \
                      instructions between producer and consumer; multithreaded ones can \
                      rely on the scheduler filling the gap with other threads.",
    },
    CodeInfo {
        code: "N5002",
        severity: Severity::Note,
        summary: "structural stall on a sequential functional unit",
        explanation: "Two instructions competing for the sequential multiplier/divider \
                      within the unit's occupancy window; the second stalls until the unit \
                      frees. Spacing the operations or configuring a pipelined multiplier \
                      removes the stall.",
    },
    CodeInfo {
        code: "N5003",
        severity: Severity::Note,
        summary: "fusible block cut",
        explanation: "A straight-line run of lane-local parallel instructions long enough \
                      for the block-fusion engine ends here, and the note names the reason \
                      (control flow, a scalar-operand broadcast, a reduction, an inter-PE \
                      shift, ...). Reordering scalar bookkeeping out of a parallel block can \
                      lengthen the fused run and reduce per-instruction broadcast overhead.",
    },
    CodeInfo {
        code: "E6001",
        severity: Severity::Error,
        summary: "scalar memory write race: result provably depends on the schedule",
        explanation: "Two threads that definitely run concurrently both definitely write the \
                      same scalar-memory word with different known values, and no `tjoin` \
                      orders the writes — the word's final value is decided by the schedule \
                      alone:\n\n    li     s1, child\n    tspawn s2, s1\n    li     s3, 1\n    \
                      sw     s3, 100(s0)   ; E6001 — child stores 2 to the same word\n    \
                      tjoin  s2\n    halt\n  child:\n    li     s3, 2\n    sw     s3, \
                      100(s0)\n    texit\n\nThe severity contract for this code is enforced \
                      by execution: `mtasc lint --schedules N` (and the \
                      `race_differential` test suite) runs the program under N perturbed \
                      legal schedules and demonstrates divergent architectural state. W6002 \
                      is the maybe-variant for conflicts the analysis cannot prove divergent \
                      (read/write pairs, unknown values, conditionally executed accesses, or \
                      spawn targets that do not constant-fold).",
    },
    CodeInfo {
        code: "W6002",
        severity: Severity::Warning,
        summary: "scalar memory access may race with a concurrent thread",
        explanation: "A scalar-memory access conflicts with an access to the same word from \
                      a thread that may run in parallel (per the happens-before windows \
                      delimited by constant-folded `tspawn`/`tjoin` edges), and at least one \
                      side writes:\n\n    li     s1, child\n    tspawn s2, s1\n    lw     s4, \
                      100(s0)   ; W6002 — the child may store first or second\n    tjoin  \
                      s2\n\nMove the access after the `tjoin`, or prove the addresses \
                      disjoint (the pass only compares constant-folded effective \
                      addresses). See E6001 for the provably-divergent variant.",
    },
    CodeInfo {
        code: "W6003",
        severity: Severity::Warning,
        summary: "PE-local memory access may race between thread contexts",
        explanation: "A parallel load/store (`plw`/`psw`) conflicts with a parallel access \
                      to the same local-memory word from a concurrent thread. Each PE has \
                      one local memory shared by *all* thread contexts — the paper's \
                      multithreading multiplies register planes, not local store — so \
                      concurrent threads must partition the local address space:\n\n    \
                      ; boot thread: psw p1, 0(p0)\n    ; spawned thread: psw p2, 0(p0)   \
                      ; W6003 — same word, any PE\n\nGive each thread a private window \
                      (offset by a per-thread base register) or join before reusing the \
                      region.",
    },
    CodeInfo {
        code: "W6004",
        severity: Severity::Warning,
        summary: "register transfer to/from a running thread is unordered",
        explanation: "A `tget`/`tput` addresses a scalar register of a spawned thread that \
                      is still running *and* writes that same register itself:\n\n    li     \
                      s1, child\n    tspawn s2, s1\n    tget   s3, s2, s4   ; W6004 — the \
                      child also writes s4\n    tjoin  s2\n\nTransfers are serialized at \
                      issue but impose no ordering against the target's own instructions, \
                      so the value moved depends on the schedule. Passing arguments with \
                      `tput` right after `tspawn` into registers the child only *reads* is \
                      the sanctioned idiom and stays quiet; reading results back is safe \
                      after `tjoin`.",
    },
    CodeInfo {
        code: "W6005",
        severity: Severity::Warning,
        summary: "raw thread id used while spawned threads are live",
        explanation: "A `tjoin`/`tget`/`tput` addresses a thread context by a raw constant \
                      id while at least one spawn window is open:\n\n    li     s1, child\n    \
                      tspawn s2, s1\n    li     s3, 1\n    tjoin  s3        ; W6005 — id 1 \
                      is an allocation-order guess\n\nContext ids are assigned in allocation \
                      order and reused after `texit`, so under another schedule the id may \
                      name a different thread (or none). Use the handle written by `tspawn`; \
                      W3004 covers raw-id waits in spawn-free programs and E3002/W3002 \
                      cover out-of-range ids.",
    },
];

/// Look up a code (case-insensitive) in the catalog.
pub fn explain(code: &str) -> Option<&'static CodeInfo> {
    CODES.iter().find(|c| c.code.eq_ignore_ascii_case(code))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_codes_are_unique_and_well_formed() {
        let mut seen = std::collections::HashSet::new();
        for info in CODES {
            assert!(seen.insert(info.code), "duplicate code {}", info.code);
            let (head, num) = info.code.split_at(1);
            assert_eq!(num.len(), 4, "{}", info.code);
            assert!(num.chars().all(|c| c.is_ascii_digit()), "{}", info.code);
            let expect = match info.severity {
                Severity::Error => "E",
                Severity::Warning => "W",
                Severity::Note => "N",
            };
            assert_eq!(head, expect, "{} severity prefix mismatch", info.code);
        }
    }

    #[test]
    fn explain_is_case_insensitive() {
        assert!(explain("e2001").is_some());
        assert!(explain("W4002").is_some());
        assert!(explain("X9999").is_none());
    }
}
