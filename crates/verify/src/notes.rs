//! Performance notes: a symbolic scoreboard walk that predicts where the
//! pipeline will stall (N5001/N5002), and fusion-cut diagnostics that
//! explain every block-fusion boundary (N5003).
//!
//! The stall prediction uses the machine's own [`asc_core::Timing`]
//! produce/consume offsets, so a predicted stall length is exactly what
//! the cycle-accurate simulator charges for the same back-to-back pair —
//! the same numbers `mtasc stall-summary` reports after the fact, but
//! available before running anything. Notes never affect the lint exit
//! status; they exist to explain *why* a program underperforms and where
//! the paper's multithreading would win it back.

use std::collections::HashMap;

use asc_core::config::{DividerConfig, MultiplierKind};
use asc_isa::{Instr, Operand};

use crate::diag::{Diagnostic, Severity};
use crate::flow::Input;

/// Cap on emitted stall notes, largest stalls first: the point is to name
/// the top offenders, not to annotate every instruction of a long kernel.
const MAX_STALL_NOTES: usize = 5;

struct Producer {
    pc: u32,
    issue: u64,
    produce: u64,
}

struct StallNote {
    stall: u64,
    pc: u32,
    message: String,
    note: String,
    structural: bool,
}

/// Predict RAW and structural stalls along each straight-line block of
/// the program, assuming a single thread issuing back-to-back (the
/// worst case the paper's multithreading exists to hide).
pub(crate) fn hazards(input: &Input) -> Vec<Diagnostic> {
    let timing = input.cfg.timing();
    let len = input.imem.len();
    let mut leader = vec![false; len.max(1)];
    if len > 0 {
        leader[0] = true;
    }
    for (pc, slot) in input.imem.iter().enumerate() {
        let Ok(instr) = slot else {
            if pc + 1 < len {
                leader[pc + 1] = true;
            }
            continue;
        };
        if (instr.is_branch() || matches!(instr, Instr::Halt | Instr::TExit)) && pc + 1 < len {
            leader[pc + 1] = true;
        }
        match *instr {
            Instr::J { target } | Instr::Jal { target, .. } if (target as usize) < len => {
                leader[target as usize] = true;
            }
            Instr::Bt { off, .. } | Instr::Bf { off, .. } => {
                let t = pc as i64 + 1 + off as i64;
                if (0..len as i64).contains(&t) {
                    leader[t as usize] = true;
                }
            }
            _ => {}
        }
    }

    let seq_mul = matches!(input.cfg.multiplier, MultiplierKind::Sequential { .. });
    let seq_div = matches!(input.cfg.divider, DividerConfig::Sequential { .. });

    let mut found: Vec<StallNote> = Vec::new();
    let mut pc = 0usize;
    while pc < len {
        // One straight-line block starting at a leader.
        let mut last_def: HashMap<Operand, Producer> = HashMap::new();
        let mut mul_free = 0u64;
        let mut div_free = 0u64;
        let mut prev_issue: Option<u64> = None;
        while let Ok(instr) = &input.imem[pc] {
            let earliest = prev_issue.map_or(0, |p| p + 1);
            let mut issue = earliest;

            // RAW: each source operand must wait for its in-block producer.
            let mut worst_raw: Option<(u64, &Producer, Operand)> = None;
            for op in instr.uses() {
                if let Some(prod) = last_def.get(&op) {
                    let c = timing.consume_offset(instr.class(), op.class);
                    let ready = (prod.issue + prod.produce + 1).saturating_sub(c);
                    if ready > issue {
                        issue = ready;
                    }
                    let stall = ready.saturating_sub(earliest);
                    if stall > 0 && worst_raw.as_ref().is_none_or(|(s, ..)| stall > *s) {
                        worst_raw = Some((stall, prod, op));
                    }
                }
            }
            if let Some((stall, prod, op)) = worst_raw {
                let text = disasm(instr);
                let ptext = disasm_at(input, prod.pc);
                found.push(StallNote {
                    stall,
                    pc: pc as u32,
                    message: format!(
                        "`{text}` stalls {stall} cycle{} waiting on {} from `{ptext}` (pc {})",
                        plural(stall),
                        op_name(op),
                        prod.pc
                    ),
                    note: format!(
                        "the producer's result is forwarded {} cycles after issue; with other \
                         runnable threads the scheduler fills these slots, otherwise hoist \
                         independent instructions between the pair",
                        prod.produce
                    ),
                    structural: false,
                });
            }

            // Structural: the sequential multiplier/divider is busy.
            let ex = timing.ex_start(instr.class());
            let unit_busy_until = if instr.uses_multiplier() && seq_mul {
                Some(&mut mul_free)
            } else if instr.uses_divider() && seq_div {
                Some(&mut div_free)
            } else {
                None
            };
            if let Some(free) = unit_busy_until {
                let ready = free.saturating_sub(ex);
                if ready > issue {
                    let stall = ready.saturating_sub(earliest);
                    found.push(StallNote {
                        stall,
                        pc: pc as u32,
                        message: format!(
                            "`{}` stalls {stall} cycle{} for the sequential {} unit",
                            disasm(instr),
                            plural(stall),
                            if instr.uses_multiplier() { "multiplier" } else { "divider" },
                        ),
                        note: "space out mul/div operations or configure a pipelined unit"
                            .to_string(),
                        structural: true,
                    });
                    issue = ready;
                }
                *free = issue + ex + timing.unit_latency(instr);
            }

            let produce = timing.produce_offset(instr);
            for d in instr.defs() {
                last_def.insert(d, Producer { pc: pc as u32, issue, produce });
            }
            prev_issue = Some(issue);
            pc += 1;
            if pc >= len || leader[pc] {
                break;
            }
        }
        if prev_issue.is_none() {
            // Undecodable word: step over it.
            pc += 1;
        }
    }

    found.sort_by(|a, b| b.stall.cmp(&a.stall).then(a.pc.cmp(&b.pc)));
    found.truncate(MAX_STALL_NOTES);
    found.sort_by_key(|n| n.pc);
    found
        .into_iter()
        .map(|n| {
            let code = if n.structural { "N5002" } else { "N5001" };
            Diagnostic::new(Severity::Note, code, n.pc, n.message).with_note(n.note)
        })
        .collect()
}

/// Explain every fusion boundary: where each fusible straight-line block
/// of parallel instructions ends, and why.
pub(crate) fn fusion_cuts(input: &Input) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for run in asc_core::fusible_runs(input.imem, input.cfg) {
        let end = run.start + run.len;
        match run.cut_pc {
            Some(cut) => {
                let text = disasm_at(input, cut);
                diags.push(
                    Diagnostic::new(
                        Severity::Note,
                        "N5003",
                        cut,
                        format!(
                            "`{text}` cuts a fusible block of {} parallel instructions \
                             (pc {}..{end}): {}",
                            run.len, run.start, run.cut
                        ),
                    )
                    .with_note(
                        "lane-local parallel runs execute tile-by-tile with one broadcast per \
                         block; moving scalar bookkeeping out of the run lengthens it",
                    ),
                );
            }
            None => {
                diags.push(Diagnostic::new(
                    Severity::Note,
                    "N5003",
                    run.start,
                    format!(
                        "fusible block of {} parallel instructions (pc {}..{end}) runs to the \
                         end of the program",
                        run.len, run.start
                    ),
                ));
            }
        }
    }
    diags
}

fn disasm(instr: &Instr) -> String {
    asc_asm::disassemble(instr)
}

fn disasm_at(input: &Input, pc: u32) -> String {
    match &input.imem[pc as usize] {
        Ok(i) => disasm(i),
        Err(_) => "<undecodable>".to_string(),
    }
}

fn op_name(op: Operand) -> String {
    use asc_isa::RegClass;
    match op.class {
        RegClass::SGpr => format!("s{}", op.index),
        RegClass::SFlag => format!("f{}", op.index),
        RegClass::PGpr => format!("p{}", op.index),
        RegClass::PFlag => format!("pf{}", op.index),
    }
}

fn plural(n: u64) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}
