//! Human-readable rendering of a lint report, in the style of the
//! assembler's own error output: severity-tagged headline, source
//! location with a caret excerpt (when the source is available), and
//! indented context notes.

use asc_asm::source_excerpt;

use crate::{Diagnostic, LintReport};

/// Render the whole report. `source` enables caret excerpts; `path` is
/// the display name used in `-->` location lines (e.g. the input file).
pub(crate) fn render(report: &LintReport, source: Option<&str>, path: &str) -> String {
    let mut out = String::new();
    let lines: Vec<&str> = source.map(|s| s.lines().collect()).unwrap_or_default();
    for d in &report.diagnostics {
        render_one(&mut out, d, &lines, path);
    }
    let (e, w, n) = (report.error_count(), report.warning_count(), report.note_count());
    if report.diagnostics.is_empty() {
        out.push_str("clean: no findings\n");
    } else {
        out.push_str(&format!(
            "{e} error{}, {w} warning{}, {n} note{}\n",
            plural(e),
            plural(w),
            plural(n)
        ));
    }
    out
}

fn render_one(out: &mut String, d: &Diagnostic, lines: &[&str], path: &str) {
    out.push_str(&format!("{}[{}]: {}\n", d.severity, d.code, d.message));
    if d.line > 0 {
        if d.span.col > 0 {
            out.push_str(&format!("  --> {path}:{}:{} (pc {})\n", d.line, d.span.col, d.pc));
        } else {
            out.push_str(&format!("  --> {path}:{} (pc {})\n", d.line, d.pc));
        }
        if let Some(text) = lines.get(d.line as usize - 1) {
            if d.span.col > 0 {
                out.push_str(&source_excerpt(text, d.line, d.span.col, d.span.len));
            }
        }
    } else {
        out.push_str(&format!("  --> pc {}\n", d.pc));
    }
    for note in &d.notes {
        out.push_str(&format!("  = note: {note}\n"));
    }
    out.push('\n');
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}
