#![warn(missing_docs)]

//! # asc-verify — static analyzer and lint pipeline for MTASC programs
//!
//! Analyzes an assembled [`asc_asm::Program`] (or a raw instruction-word
//! stream) **without executing it**, against a concrete
//! [`MachineConfig`] — bounds, latencies, and unit availability all come
//! from the same configuration the simulator would run with. The
//! pipeline:
//!
//! 1. **Control flow** — a per-thread CFG from branches/jumps/halts, with
//!    `tspawn` targets analyzed as separate thread entry points;
//!    off-the-end execution, out-of-range targets, unreachable code.
//! 2. **Forward dataflow** — constant propagation through the ISA's own
//!    `apply` semantics, driving: uninitialized-read detection for all
//!    four register files, static memory-bounds checks for `lw`/`sw`/
//!    `plw`/`psw`, thread-lifecycle checks (self-join, bad thread ids,
//!    use-after-join, leaked handles), and mask-emptiness lints.
//! 3. **Backward liveness** — dead flag stores.
//! 4. **Performance notes** — a symbolic scoreboard walk predicting RAW
//!    and structural stalls from the machine's [`asc_core::Timing`]
//!    model, and an explanation for every block-fusion cut.
//!
//! The severity contract: an **error** is a proven runtime fault (the
//! differential tests execute every error-flagged program and check
//! `Machine::run` really fails); a **warning** is a suspected bug; a
//! **note** is informational and never affects exit status.
//!
//! ```
//! use asc_core::MachineConfig;
//!
//! let program = asc_asm::assemble(
//!     "        li   s1, 2000\n         lw   s2, 0(s1)\n         halt\n",
//! )
//! .unwrap();
//! let report = asc_verify::analyze(&program, &MachineConfig::prototype());
//! assert_eq!(report.error_count(), 1); // E2002: 2000 >= smem_words
//! ```
//!
//! Entry points: [`analyze`], [`analyze_words`], [`LintReport`], and the
//! code catalog ([`CODES`], [`explain`]) behind `mtasc lint --explain`.

use asc_asm::Program;
use asc_core::obs::Json;
use asc_core::MachineConfig;
use asc_isa::{decode, DecodeError, Instr};

mod deadstore;
mod diag;
mod flow;
mod json;
mod mhp;
mod notes;
mod races;
mod render;

pub use diag::{explain, CodeInfo, Diagnostic, Severity, CODES};

/// The result of analyzing one program: all findings, sorted by severity
/// then program counter.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// All findings, errors first, each group in pc order.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of instructions analyzed.
    pub program_len: u32,
}

impl LintReport {
    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    /// Number of notes.
    pub fn note_count(&self) -> usize {
        self.count(Severity::Note)
    }

    fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// Lint verdict: clean means no errors — and, under `deny_warnings`,
    /// no warnings either. Notes never fail a program.
    pub fn is_clean(&self, deny_warnings: bool) -> bool {
        self.error_count() == 0 && (!deny_warnings || self.warning_count() == 0)
    }

    /// Encode as a `mtasc.lint.v1` JSON value.
    pub fn to_json(&self) -> Json {
        json::to_json(self)
    }

    /// Human-readable rendering. `source` (the assembly text) enables
    /// caret excerpts; `path` labels the `-->` location lines.
    pub fn render(&self, source: Option<&str>, path: &str) -> String {
        render::render(self, source, path)
    }
}

/// Analyze an assembled program against a machine configuration.
pub fn analyze(program: &Program, cfg: &MachineConfig) -> LintReport {
    let imem: Vec<Result<Instr, DecodeError>> = program.instrs.iter().map(|i| Ok(*i)).collect();
    let len = imem.len() as u32;
    let labels: Vec<u32> = program
        .symbols
        .values()
        .filter(|&&v| v >= 0 && (v as u32) < len)
        .map(|&v| v as u32)
        .collect();
    let mut report = analyze_imem(&imem, cfg, labels);
    for d in &mut report.diagnostics {
        if let Some(&line) = program.lines.get(d.pc as usize) {
            d.line = line;
        }
        if let Some(&span) = program.spans.get(d.pc as usize) {
            d.span = span;
        }
    }
    report
}

/// Analyze a raw instruction-word stream (no source map; undecodable
/// words become `E0005`/`W0005` findings instead of panics).
pub fn analyze_words(words: &[u32], cfg: &MachineConfig) -> LintReport {
    let imem: Vec<Result<Instr, DecodeError>> = words.iter().map(|&w| decode(w)).collect();
    analyze_imem(&imem, cfg, Vec::new())
}

fn analyze_imem(
    imem: &[Result<Instr, DecodeError>],
    cfg: &MachineConfig,
    labels: Vec<u32>,
) -> LintReport {
    let input = flow::Input::new(imem, cfg, labels);
    let (mut diags, reachable, contexts) = flow::run(&input);
    let oversized = diags.iter().any(|d| d.code == "E0004");
    if !oversized {
        diags.extend(races::run(&input, &contexts));
        diags.extend(deadstore::run(&input, &reachable));
        diags.extend(notes::hazards(&input));
        diags.extend(notes::fusion_cuts(&input));
    }
    diags.sort_by(|a, b| (a.severity, a.pc, a.code).cmp(&(b.severity, b.pc, b.code)));
    LintReport { diagnostics: diags, program_len: imem.len() as u32 }
}

#[cfg(test)]
mod tests;
