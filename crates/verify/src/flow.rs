//! The forward dataflow engine: abstract interpretation of a program over
//! a small constant lattice, one fixpoint per thread entry point, followed
//! by a scan that emits findings and a must-reach walk that decides which
//! definite-fault findings are provable errors.
//!
//! The abstract domains mirror the machine's real start-of-thread state
//! (every register file is zeroed when a context is allocated), and all
//! constant folding goes through the ISA's own [`AluOp::apply`] /
//! [`CmpOp::apply`] / [`FlagOp::apply`] so a folded value can never
//! disagree with the simulator.

use std::collections::{BTreeMap, BTreeSet};

use asc_asm::disassemble;
use asc_core::config::{DividerConfig, MultiplierKind};
use asc_core::MachineConfig;
use asc_isa::{
    AluOp, DecodeError, FlagOp, Instr, Mask, Operand, PReg, RegClass, SReg, Width, Word, NUM_FLAGS,
    NUM_GPRS,
};

use crate::diag::{Diagnostic, Severity};

/// Abstract value of a scalar general-purpose register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SVal {
    /// Unknown.
    Top,
    /// Known machine word on every path.
    Const(Word),
    /// A thread handle produced by the `tspawn` at `spawn_pc`.
    Handle {
        spawn_pc: u32,
        /// The thread has been joined on some path (context released).
        released: bool,
        /// The handle escaped (stored to memory or sent via `tput`), so
        /// overwriting this register does not lose it.
        escaped: bool,
    },
}

impl SVal {
    fn join(self, other: SVal) -> SVal {
        use SVal::*;
        match (self, other) {
            (a, b) if a == b => a,
            (Const(_), Const(_)) => Top,
            (
                Handle { spawn_pc: a, released: ra, escaped: ea },
                Handle { spawn_pc: b, released: rb, escaped: eb },
            ) if a == b => Handle { spawn_pc: a, released: ra || rb, escaped: ea || eb },
            _ => Top,
        }
    }
}

/// Abstract value of a parallel register: either unknown or the same known
/// word in every PE lane (what `pli` and broadcast moves produce).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PVal {
    Top,
    Uniform(Word),
}

impl PVal {
    fn join(self, other: PVal) -> PVal {
        if self == other {
            self
        } else {
            PVal::Top
        }
    }
}

/// Tri-state abstract boolean for scalar flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FVal {
    False,
    True,
    Top,
}

impl FVal {
    fn join(self, other: FVal) -> FVal {
        if self == other {
            self
        } else {
            FVal::Top
        }
    }

    fn from_bool(b: bool) -> FVal {
        if b {
            FVal::True
        } else {
            FVal::False
        }
    }

    fn known(self) -> Option<bool> {
        match self {
            FVal::False => Some(false),
            FVal::True => Some(true),
            FVal::Top => None,
        }
    }

    /// Possible concrete values.
    fn candidates(self) -> &'static [bool] {
        match self {
            FVal::False => &[false],
            FVal::True => &[true],
            FVal::Top => &[false, true],
        }
    }
}

/// Apply a flag operation over tri-state inputs: fold only when every
/// combination of possible inputs yields the same output.
fn fold_flag_op(op: FlagOp, a: FVal, b: FVal) -> FVal {
    let mut out: Option<bool> = None;
    for &av in a.candidates() {
        for &bv in b.candidates() {
            let r = op.apply(av, bv);
            match out {
                None => out = Some(r),
                Some(prev) if prev == r => {}
                Some(_) => return FVal::Top,
            }
        }
    }
    out.map(FVal::from_bool).unwrap_or(FVal::Top)
}

/// Abstract machine state at an instruction boundary, per thread context.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct AbsState {
    pub s: [SVal; NUM_GPRS],
    pub p: [PVal; NUM_GPRS],
    pub sf: [FVal; NUM_FLAGS],
    /// Bit `f` set: parallel flag `pf f` is false in every lane on every
    /// path (a *must* property; the initial all-cleared state sets all
    /// bits).
    pub pf_zero: u8,
    /// Initialization bitsets: `must` = written on every path, `may` =
    /// written on some path. Bit = register index.
    pub s_must: u16,
    pub s_may: u16,
    pub p_must: u16,
    pub p_may: u16,
    pub sf_must: u8,
    pub sf_may: u8,
    pub pf_must: u8,
    pub pf_may: u8,
}

impl AbsState {
    /// State of a freshly allocated thread: all registers zeroed, all
    /// flags false, nothing considered initialized (reads return zero but
    /// are flagged as uninitialized-read smells).
    fn at_thread_start() -> AbsState {
        AbsState {
            s: [SVal::Const(Word::ZERO); NUM_GPRS],
            p: [PVal::Uniform(Word::ZERO); NUM_GPRS],
            sf: [FVal::False; NUM_FLAGS],
            pf_zero: 0xff,
            s_must: 1,
            s_may: 1,
            p_must: 1,
            p_may: 1,
            sf_must: 0,
            sf_may: 0,
            pf_must: 0,
            pf_may: 0,
        }
    }

    /// Entry state of a *spawned* context. Scalar GPRs are considered
    /// initialized (and unknown): the parent passes arguments with `tput`
    /// after the spawn, which a per-thread analysis cannot see.
    fn at_spawn_entry() -> AbsState {
        let mut st = AbsState::at_thread_start();
        st.s = [SVal::Top; NUM_GPRS];
        st.s[0] = SVal::Const(Word::ZERO);
        st.s_must = u16::MAX;
        st.s_may = u16::MAX;
        st
    }

    fn join_from(&mut self, other: &AbsState) -> bool {
        let before = self.clone();
        for i in 0..NUM_GPRS {
            self.s[i] = self.s[i].join(other.s[i]);
            self.p[i] = self.p[i].join(other.p[i]);
        }
        for i in 0..NUM_FLAGS {
            self.sf[i] = self.sf[i].join(other.sf[i]);
        }
        self.pf_zero &= other.pf_zero;
        self.s_must &= other.s_must;
        self.p_must &= other.p_must;
        self.sf_must &= other.sf_must;
        self.pf_must &= other.pf_must;
        self.s_may |= other.s_may;
        self.p_may |= other.p_may;
        self.sf_may |= other.sf_may;
        self.pf_may |= other.pf_may;
        *self != before
    }

    pub(crate) fn sget(&self, r: SReg) -> SVal {
        if r.index() == 0 {
            SVal::Const(Word::ZERO)
        } else {
            self.s[r.index()]
        }
    }

    fn sset(&mut self, r: SReg, v: SVal) {
        if r.index() != 0 {
            self.s[r.index()] = v;
            self.s_must |= 1 << r.index();
            self.s_may |= 1 << r.index();
        }
    }

    pub(crate) fn pget(&self, r: PReg) -> PVal {
        if r.index() == 0 {
            PVal::Uniform(Word::ZERO)
        } else {
            self.p[r.index()]
        }
    }

    /// Write a parallel register under `mask`. A masked write joins with
    /// the old value (inactive lanes keep theirs) but still counts as
    /// initializing — kernels routinely write under a responder mask and
    /// read the merged value back under the same mask.
    fn pset(&mut self, r: PReg, v: PVal, mask: Mask) {
        if r.index() == 0 {
            return;
        }
        self.p[r.index()] = match mask {
            Mask::All => v,
            Mask::Flag(_) => self.p[r.index()].join(v),
        };
        self.p_must |= 1 << r.index();
        self.p_may |= 1 << r.index();
    }

    /// Record that a parallel register was textually assigned without
    /// changing its tracked value — the statically-masked-out write case.
    /// The uninitialized-read lint is about registers the program never
    /// assigns; a write whose mask happens to fold to empty on this path
    /// still shows programmer intent, and the matching read is masked out
    /// on the same path anyway.
    fn pmark(&mut self, r: PReg) {
        self.p_must |= 1 << r.index();
        self.p_may |= 1 << r.index();
    }

    fn sfset(&mut self, f: asc_isa::SFlag, v: FVal) {
        self.sf[f.index()] = v;
        self.sf_must |= 1 << f.index();
        self.sf_may |= 1 << f.index();
    }

    fn pf_is_zero(&self, f: asc_isa::PFlag) -> bool {
        self.pf_zero & (1 << f.index()) != 0
    }

    /// Mark every register holding a handle from `spawn_pc` as released
    /// (joined) or escaped.
    fn mark_handles(&mut self, spawn_pc: u32, release: bool, escape: bool) {
        for v in self.s.iter_mut() {
            if let SVal::Handle { spawn_pc: p, released, escaped } = v {
                if *p == spawn_pc {
                    *released |= release;
                    *escaped |= escape;
                }
            }
        }
    }
}

/// Control-flow shape of one instruction, with branch conditions folded
/// through the abstract state where possible.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Flow {
    /// `halt` / `texit` (or an undecodable word): execution of this thread
    /// stops here as far as the CFG is concerned.
    Stop,
    /// Fall through to `pc + 1`.
    Fall,
    /// Unconditional transfer to an absolute address (may be out of
    /// range; stored as i64 so negative relative targets survive).
    Jump(i64),
    /// Conditional branch: fall through or go to `taken`. `known` is the
    /// folded condition, when the flag's value is a path-invariant.
    Branch { taken: i64, known: Option<bool> },
    /// `jr` through an unknown register: candidate return addresses.
    Indirect(Vec<u32>),
}

/// Everything the passes need about the program being analyzed.
pub(crate) struct Input<'a> {
    pub imem: &'a [Result<Instr, DecodeError>],
    pub cfg: &'a MachineConfig,
    /// `jal` return addresses (candidate `jr` targets).
    pub jal_returns: Vec<u32>,
    /// Label addresses (fallback `jr` targets for jump tables).
    pub labels: Vec<u32>,
    /// True if any `tspawn` appears anywhere in the program.
    pub has_spawn: bool,
}

impl<'a> Input<'a> {
    pub fn new(
        imem: &'a [Result<Instr, DecodeError>],
        cfg: &'a MachineConfig,
        labels: Vec<u32>,
    ) -> Input<'a> {
        let len = imem.len() as u32;
        let mut jal_returns = Vec::new();
        let mut has_spawn = false;
        for (pc, slot) in imem.iter().enumerate() {
            match slot {
                Ok(Instr::Jal { .. }) if (pc as u32) + 1 < len => jal_returns.push(pc as u32 + 1),
                Ok(Instr::TSpawn { .. }) => has_spawn = true,
                _ => {}
            }
        }
        let labels = labels.into_iter().filter(|&l| l < len).collect();
        Input { imem, cfg, jal_returns, labels, has_spawn }
    }

    pub fn len(&self) -> u32 {
        self.imem.len() as u32
    }

    fn width(&self) -> Width {
        self.cfg.width
    }
}

/// Compute the control-flow shape of the instruction at `pc` given its
/// entry state.
pub(crate) fn flow_of(pc: u32, instr: &Instr, st: &AbsState, input: &Input) -> Flow {
    let rel = |off: i16| pc as i64 + 1 + off as i64;
    match *instr {
        Instr::Halt | Instr::TExit => Flow::Stop,
        Instr::J { target } | Instr::Jal { target, .. } => Flow::Jump(target as i64),
        Instr::Bt { fa, off } => Flow::Branch { taken: rel(off), known: st.sf[fa.index()].known() },
        Instr::Bf { fa, off } => {
            Flow::Branch { taken: rel(off), known: st.sf[fa.index()].known().map(|b| !b) }
        }
        Instr::Jr { ra } => match st.sget(ra) {
            SVal::Const(c) => Flow::Jump(c.to_u32() as i64),
            _ => {
                let cands = if !input.jal_returns.is_empty() {
                    input.jal_returns.clone()
                } else {
                    input.labels.clone()
                };
                Flow::Indirect(cands)
            }
        },
        _ => Flow::Fall,
    }
}

/// In-range CFG successors of the instruction (out-of-range edges are
/// reported by the scan, not followed).
pub(crate) fn successors(pc: u32, flow: &Flow, len: u32) -> Vec<u32> {
    let mut out = Vec::new();
    let mut push = |t: i64| {
        if (0..len as i64).contains(&t) {
            out.push(t as u32);
        }
    };
    match flow {
        Flow::Stop => {}
        Flow::Fall => push(pc as i64 + 1),
        Flow::Jump(t) => push(*t),
        Flow::Branch { taken, known } => match known {
            Some(true) => push(*taken),
            Some(false) => push(pc as i64 + 1),
            None => {
                push(pc as i64 + 1);
                push(*taken);
            }
        },
        Flow::Indirect(cands) => {
            for &c in cands {
                push(c as i64);
            }
        }
    }
    out
}

/// Transfer function: abstract effect of one instruction.
pub(crate) fn transfer(
    pc: u32,
    instr: &Instr,
    st: &AbsState,
    input: &Input,
    is_main: bool,
) -> AbsState {
    let w = input.width();
    let mut out = st.clone();
    let fold2 = |a: SVal, b: SVal, op: AluOp| -> SVal {
        match (a, b) {
            (SVal::Const(x), SVal::Const(y)) => SVal::Const(op.apply(x, y, w)),
            // `mov` expands to `add rd, ra, r0`: adding zero to a handle
            // copies the handle (and its lifecycle state) rather than
            // degrading it to Top.
            (h @ SVal::Handle { .. }, SVal::Const(z))
            | (SVal::Const(z), h @ SVal::Handle { .. })
                if op == AluOp::Add && z == Word::ZERO =>
            {
                h
            }
            _ => SVal::Top,
        }
    };
    match *instr {
        Instr::Nop | Instr::Halt | Instr::TExit => {}
        Instr::SAlu { op, rd, ra, rb } => {
            let v = fold2(st.sget(ra), st.sget(rb), op);
            out.sset(rd, v);
        }
        Instr::SAluImm { op, rd, ra, imm } => {
            let v = fold2(st.sget(ra), SVal::Const(Word::from_i64(imm as i64, w)), op);
            out.sset(rd, v);
        }
        Instr::SCmp { op, fd, ra, rb } => {
            let v = match (st.sget(ra), st.sget(rb)) {
                (SVal::Const(a), SVal::Const(b)) => FVal::from_bool(op.apply(a, b, w)),
                _ => FVal::Top,
            };
            out.sfset(fd, v);
        }
        Instr::SCmpImm { op, fd, ra, imm } => {
            let v = match st.sget(ra) {
                SVal::Const(a) => FVal::from_bool(op.apply(a, Word::from_i64(imm as i64, w), w)),
                _ => FVal::Top,
            };
            out.sfset(fd, v);
        }
        Instr::SFlagOp { op, fd, fa, fb } => {
            let v = fold_flag_op(op, st.sf[fa.index()], st.sf[fb.index()]);
            out.sfset(fd, v);
        }
        Instr::Lw { rd, .. } => out.sset(rd, SVal::Top),
        Instr::Sw { rs, .. } => {
            // Storing a handle publishes it: another register (or a later
            // load) may legitimately be the one that joins the thread.
            if let SVal::Handle { spawn_pc, .. } = st.sget(rs) {
                out.mark_handles(spawn_pc, false, true);
            }
        }
        Instr::Li { rd, imm } => out.sset(rd, SVal::Const(Word::from_i64(imm as i64, w))),
        Instr::Lui { rd, imm } => {
            out.sset(rd, SVal::Const(Word::new((imm as u32) << (w.bits() / 2), w)));
        }
        Instr::Bt { .. } | Instr::Bf { .. } | Instr::J { .. } | Instr::Jr { .. } => {}
        Instr::Jal { rd, .. } => out.sset(rd, SVal::Const(Word::new(pc + 1, w))),
        Instr::TSpawn { rd, .. } => {
            out.sset(rd, SVal::Handle { spawn_pc: pc, released: false, escaped: false });
        }
        Instr::TJoin { ra } => {
            if let SVal::Handle { spawn_pc, .. } = st.sget(ra) {
                out.mark_handles(spawn_pc, true, false);
            }
        }
        Instr::TGet { rd, .. } => out.sset(rd, SVal::Top),
        Instr::TPut { rb, .. } => {
            if let SVal::Handle { spawn_pc, .. } = st.sget(rb) {
                out.mark_handles(spawn_pc, false, true);
            }
        }
        Instr::TId { rd } => {
            // The boot thread is hardware context 0; spawned contexts get
            // whatever id was free.
            let v = if is_main { SVal::Const(Word::ZERO) } else { SVal::Top };
            out.sset(rd, v);
        }
        Instr::PAlu { op, pd, pa, pb, mask } => {
            if !masked_out(st, mask) {
                let v = match (st.pget(pa), st.pget(pb)) {
                    (PVal::Uniform(a), PVal::Uniform(b)) => PVal::Uniform(op.apply(a, b, w)),
                    _ => PVal::Top,
                };
                out.pset(pd, v, mask);
            } else {
                out.pmark(pd);
            }
        }
        Instr::PAluS { op, pd, pa, sb, mask } => {
            if !masked_out(st, mask) {
                let v = match (st.pget(pa), st.sget(sb)) {
                    (PVal::Uniform(a), SVal::Const(b)) => PVal::Uniform(op.apply(a, b, w)),
                    _ => PVal::Top,
                };
                out.pset(pd, v, mask);
            } else {
                out.pmark(pd);
            }
        }
        Instr::PAluImm { op, pd, pa, imm, mask } => {
            if !masked_out(st, mask) {
                let v = match st.pget(pa) {
                    PVal::Uniform(a) => {
                        PVal::Uniform(op.apply(a, Word::from_i64(imm as i64, w), w))
                    }
                    PVal::Top => PVal::Top,
                };
                out.pset(pd, v, mask);
            } else {
                out.pmark(pd);
            }
        }
        Instr::PCmp { op, fd, pa, pb, mask } => {
            let wf = match (st.pget(pa), st.pget(pb)) {
                (PVal::Uniform(a), PVal::Uniform(b)) => !op.apply(a, b, w),
                _ => false,
            };
            pflag_write(&mut out, st, fd, wf, mask);
        }
        Instr::PCmpS { op, fd, pa, sb, mask } => {
            let wf = match (st.pget(pa), st.sget(sb)) {
                (PVal::Uniform(a), SVal::Const(b)) => !op.apply(a, b, w),
                _ => false,
            };
            pflag_write(&mut out, st, fd, wf, mask);
        }
        Instr::PCmpImm { op, fd, pa, imm, mask } => {
            let wf = match st.pget(pa) {
                PVal::Uniform(a) => !op.apply(a, Word::from_i64(imm as i64, w), w),
                PVal::Top => false,
            };
            pflag_write(&mut out, st, fd, wf, mask);
        }
        Instr::PFlagOp { op, fd, fa, fb, mask } => {
            let a = if st.pf_is_zero(fa) { FVal::False } else { FVal::Top };
            let b = if st.pf_is_zero(fb) { FVal::False } else { FVal::Top };
            let wf = fold_flag_op(op, a, b) == FVal::False;
            pflag_write(&mut out, st, fd, wf, mask);
        }
        Instr::Plw { pd, mask, .. } => {
            if !masked_out(st, mask) {
                out.pset(pd, PVal::Top, mask);
            } else {
                out.pmark(pd);
            }
        }
        Instr::Psw { .. } => {}
        Instr::Pidx { pd, mask } => {
            if !masked_out(st, mask) {
                out.pset(pd, PVal::Top, mask);
            } else {
                out.pmark(pd);
            }
        }
        Instr::PMovS { pd, sa, mask } => {
            if !masked_out(st, mask) {
                let v = match st.sget(sa) {
                    SVal::Const(c) => PVal::Uniform(c),
                    _ => PVal::Top,
                };
                out.pset(pd, v, mask);
            } else {
                out.pmark(pd);
            }
        }
        Instr::PShift { pd, mask, .. } => {
            if !masked_out(st, mask) {
                out.pset(pd, PVal::Top, mask);
            } else {
                out.pmark(pd);
            }
        }
        Instr::Reduce { sd, .. } | Instr::RCount { sd, .. } | Instr::RGet { sd, .. } => {
            out.sset(sd, SVal::Top);
        }
        Instr::RFlag { fd, .. } => out.sfset(fd, FVal::Top),
        Instr::PFirst { fd, fa, mask } => {
            let wf = st.pf_is_zero(fa);
            pflag_write(&mut out, st, fd, wf, mask);
        }
    }
    out
}

/// True if the instruction's mask is statically known empty (the write is
/// a no-op).
fn masked_out(st: &AbsState, mask: Mask) -> bool {
    matches!(mask, Mask::Flag(f) if st.pf_is_zero(f))
}

/// Update pf-zero tracking (and init bits) for a parallel-flag write.
/// `writes_false` = the written value is provably false in every written
/// lane.
fn pflag_write(
    out: &mut AbsState,
    st: &AbsState,
    fd: asc_isa::PFlag,
    writes_false: bool,
    mask: Mask,
) {
    let bit = 1u8 << fd.index();
    if masked_out(st, mask) {
        // Value untouched, but the flag counts as textually assigned (see
        // `AbsState::pmark`).
        out.pf_must |= bit;
        out.pf_may |= bit;
        return;
    }
    let zero = match mask {
        Mask::All => writes_false,
        Mask::Flag(_) => writes_false && st.pf_is_zero(fd),
    };
    if zero {
        out.pf_zero |= bit;
    } else {
        out.pf_zero &= !bit;
    }
    out.pf_must |= bit;
    out.pf_may |= bit;
}

/// One thread context: an entry pc plus whether it is the boot thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Context {
    pub entry: u32,
    pub is_main: bool,
}

/// Result of one context's fixpoint: converged entry-state per reachable
/// pc.
pub(crate) struct ContextStates {
    pub ctx: Context,
    pub states: BTreeMap<u32, AbsState>,
}

/// Run the forward fixpoint for one context.
pub(crate) fn fixpoint(ctx: Context, input: &Input) -> ContextStates {
    let entry_state =
        if ctx.is_main { AbsState::at_thread_start() } else { AbsState::at_spawn_entry() };
    let mut states: BTreeMap<u32, AbsState> = BTreeMap::new();
    let mut work: Vec<u32> = Vec::new();
    if ctx.entry < input.len() {
        states.insert(ctx.entry, entry_state);
        work.push(ctx.entry);
    }
    // Safety valve: the lattice is finite so this converges, but cap the
    // work anyway so a bug can never hang the linter.
    let mut budget = (input.len() as usize + 1) * 256;
    while let Some(pc) = work.pop() {
        if budget == 0 {
            break;
        }
        budget -= 1;
        let st = states[&pc].clone();
        let Ok(instr) = &input.imem[pc as usize] else { continue };
        let out = transfer(pc, instr, &st, input, ctx.is_main);
        let flow = flow_of(pc, instr, &st, input);
        for succ in successors(pc, &flow, input.len()) {
            match states.get_mut(&succ) {
                Some(existing) => {
                    if existing.join_from(&out) {
                        work.push(succ);
                    }
                }
                None => {
                    states.insert(succ, out.clone());
                    work.push(succ);
                }
            }
        }
    }
    ContextStates { ctx, states }
}

/// Discover all thread contexts: the boot thread plus every statically
/// resolvable `tspawn` target, iterated until no new entry appears.
pub(crate) fn discover_contexts(input: &Input) -> Vec<ContextStates> {
    let mut done: BTreeSet<Context> = BTreeSet::new();
    let mut queue: Vec<Context> = vec![Context { entry: 0, is_main: true }];
    let mut out = Vec::new();
    while let Some(ctx) = queue.pop() {
        if !done.insert(ctx) {
            continue;
        }
        let cs = fixpoint(ctx, input);
        for (&pc, st) in &cs.states {
            if let Ok(Instr::TSpawn { ra, .. }) = &input.imem[pc as usize] {
                if let SVal::Const(c) = st.sget(*ra) {
                    let target = c.to_u32();
                    if target < input.len() {
                        let cand = Context { entry: target, is_main: false };
                        if !done.contains(&cand) {
                            queue.push(cand);
                        }
                    }
                }
            }
        }
        out.push(cs);
    }
    out
}

/// A finding before severity assignment: `definite` marks findings whose
/// instruction *will fault* whenever it executes (eligible for Error
/// status if on the boot thread's must-path).
pub(crate) struct RawFinding {
    pub pc: u32,
    /// (error code, warning code); warning-only findings repeat the code.
    pub codes: (&'static str, &'static str),
    pub definite: bool,
    pub message: String,
    pub notes: Vec<String>,
}

impl RawFinding {
    fn warn(pc: u32, code: &'static str, message: String) -> RawFinding {
        RawFinding { pc, codes: (code, code), definite: false, message, notes: Vec::new() }
    }

    fn fault(
        pc: u32,
        codes: (&'static str, &'static str),
        definite: bool,
        message: String,
    ) -> RawFinding {
        RawFinding { pc, codes, definite, message, notes: Vec::new() }
    }

    fn with_note(mut self, note: impl Into<String>) -> RawFinding {
        self.notes.push(note.into());
        self
    }
}

/// Scan one context's converged states, emitting raw findings.
pub(crate) fn scan(cs: &ContextStates, input: &Input) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for (&pc, st) in &cs.states {
        match &input.imem[pc as usize] {
            Ok(instr) => scan_instr(pc, instr, st, input, cs.ctx, &mut out),
            Err(cause) => out.push(RawFinding::fault(
                pc,
                ("E0005", "W0005"),
                true,
                format!("instruction word does not decode: {cause}"),
            )),
        }
    }
    out
}

fn scan_instr(
    pc: u32,
    instr: &Instr,
    st: &AbsState,
    input: &Input,
    ctx: Context,
    out: &mut Vec<RawFinding>,
) {
    let len = input.len();
    let text = disassemble(instr);

    // --- uninitialized reads (the mask flag is checked by W4001 instead) --
    let mask_flag = instr.mask().and_then(|m| m.flag());
    let mut seen_ops: Vec<Operand> = Vec::new();
    for op in instr.uses() {
        if Some(op) == mask_flag.map(Operand::pf) {
            continue;
        }
        if seen_ops.contains(&op) {
            continue;
        }
        seen_ops.push(op);
        let idx = op.index as usize;
        let (must, may) = match op.class {
            RegClass::SGpr => (st.s_must >> idx & 1, st.s_may >> idx & 1),
            RegClass::PGpr => (st.p_must >> idx & 1, st.p_may >> idx & 1),
            RegClass::SFlag => ((st.sf_must >> idx & 1) as u16, (st.sf_may >> idx & 1) as u16),
            RegClass::PFlag => ((st.pf_must >> idx & 1) as u16, (st.pf_may >> idx & 1) as u16),
        };
        if must == 0 {
            let name = op_name(op);
            if may == 0 {
                out.push(
                    RawFinding::warn(
                        pc,
                        "W1001",
                        format!("`{text}` reads {name}, which is never initialized"),
                    )
                    .with_note(
                        "registers read as zero until written; this is almost always a \
                                missing write or a typoed register number",
                    ),
                );
            } else {
                out.push(RawFinding::warn(
                    pc,
                    "W1002",
                    format!(
                        "`{text}` reads {name}, which is uninitialized on some paths to this point"
                    ),
                ));
            }
        }
    }

    // --- empty-mask lint ---------------------------------------------------
    if let Some(f) = mask_flag {
        if st.pf_is_zero(f) {
            out.push(
                RawFinding::warn(
                    pc,
                    "W4001",
                    format!("mask ?pf{} is always false here; `{text}` has no effect", f.index()),
                )
                .with_note(
                    "parallel flags start all-false and nothing on any path to this \
                            instruction sets this one",
                ),
            );
            // A statically disabled instruction cannot fault or misuse
            // anything else; skip the remaining checks.
            return;
        }
    }

    // --- missing functional units -----------------------------------------
    if instr.uses_multiplier() && matches!(input.cfg.multiplier, MultiplierKind::None) {
        out.push(
            RawFinding::fault(
                pc,
                ("E0003", "W0003"),
                true,
                format!("`{text}` needs a multiplier but this machine has none"),
            )
            .with_note(
                "the paper's base prototype omits the multiplier; configure one with \
                        MachineConfig::with_multiplier or drop the instruction",
            ),
        );
    }
    if instr.uses_divider() && matches!(input.cfg.divider, DividerConfig::None) {
        out.push(RawFinding::fault(
            pc,
            ("E0003", "W0003"),
            true,
            format!("`{text}` needs a divider but this machine has none"),
        ));
    }

    // --- control flow ------------------------------------------------------
    let flow = flow_of(pc, instr, st, input);
    match &flow {
        Flow::Fall => {
            if pc + 1 == len {
                out.push(
                    RawFinding::fault(
                        pc,
                        ("E0001", "W0001"),
                        true,
                        "execution runs off the end of the program here".to_string(),
                    )
                    .with_note(
                        "instruction memory holds exactly the program; the next fetch \
                                faults with PcOutOfRange — end the path with `halt`, `texit`, \
                                or a jump",
                    ),
                );
            }
        }
        Flow::Jump(t) => {
            if !(0..len as i64).contains(t) {
                out.push(RawFinding::fault(
                    pc,
                    ("E0002", "W0002"),
                    true,
                    format!("`{text}` transfers control to pc {t}, outside the program (0..{len})"),
                ));
            }
        }
        Flow::Branch { taken, known } => {
            if !(0..len as i64).contains(taken) {
                out.push(RawFinding::fault(
                    pc,
                    ("E0002", "W0002"),
                    *known == Some(true),
                    format!("`{text}` branches to pc {taken}, outside the program (0..{len})"),
                ));
            }
            if pc + 1 == len && *known != Some(true) {
                out.push(RawFinding::fault(
                    pc,
                    ("E0001", "W0001"),
                    *known == Some(false),
                    "the fall-through path of this branch runs off the end of the program"
                        .to_string(),
                ));
            }
        }
        Flow::Stop | Flow::Indirect(_) => {}
    }

    // --- memory bounds ------------------------------------------------------
    match *instr {
        Instr::Lw { base, off, .. } | Instr::Sw { base, off, .. } => {
            if let SVal::Const(b) = st.sget(base) {
                let ea = b.to_u32() as i64 + off as i64;
                let words = input.cfg.smem_words as i64;
                if !(0..words).contains(&ea) {
                    out.push(RawFinding::fault(
                        pc,
                        ("E2002", "W2002"),
                        true,
                        format!("`{text}` accesses scalar memory word {ea}, outside 0..{words}"),
                    ));
                }
            }
        }
        Instr::Plw { base, off, mask, .. } | Instr::Psw { base, off, mask, .. } => {
            if let PVal::Uniform(b) = st.pget(base) {
                let ea = b.to_u32() as i64 + off as i64;
                let words = input.cfg.lmem_words as i64;
                if !(0..words).contains(&ea) {
                    // Masked lanes do not fault, so only an all-PEs access
                    // faults for certain.
                    let definite = mask == Mask::All;
                    out.push(RawFinding::fault(
                        pc,
                        ("E2001", "W2001"),
                        definite,
                        format!(
                            "`{text}` accesses local-memory word {ea} in every lane, outside \
                             0..{words}"
                        ),
                    ));
                }
            }
        }
        _ => {}
    }

    // --- thread lifecycle ---------------------------------------------------
    let threads = input.cfg.threads as u32;
    let tid_operand = match *instr {
        Instr::TJoin { ra } => Some(ra),
        Instr::TGet { ta, .. } => Some(ta),
        Instr::TPut { ta, .. } => Some(ta),
        _ => None,
    };
    if let Some(ta) = tid_operand {
        match st.sget(ta) {
            SVal::Const(c) => {
                let tid = c.to_u32();
                if tid >= threads {
                    out.push(RawFinding::fault(
                        pc,
                        ("E3002", "W3002"),
                        true,
                        format!(
                            "`{text}` uses thread id {tid}; this machine has {threads} contexts"
                        ),
                    ));
                } else if matches!(instr, Instr::TJoin { .. }) && ctx.is_main && tid == 0 {
                    out.push(
                        RawFinding::fault(
                            pc,
                            ("E3001", "E3001"),
                            true,
                            "thread 0 joins itself; a thread can never observe its own exit"
                                .to_string(),
                        )
                        .with_note("the machine faults with InvalidThread on self-join"),
                    );
                } else if !input.has_spawn {
                    out.push(RawFinding::warn(
                        pc,
                        "W3004",
                        format!(
                            "`{text}` targets thread {tid}, but the program never spawns a thread"
                        ),
                    ));
                }
            }
            SVal::Handle { released: true, spawn_pc, .. } => {
                out.push(
                    RawFinding::warn(
                        pc,
                        "W3003",
                        format!("`{text}` uses a thread handle that may already have been joined"),
                    )
                    .with_note(format!(
                        "the handle comes from the tspawn at pc {spawn_pc}; after a join the \
                         context is released and the id can be re-allocated"
                    )),
                );
            }
            _ => {
                if !input.has_spawn {
                    out.push(RawFinding::warn(
                        pc,
                        "W3004",
                        format!("`{text}` names a thread, but the program never spawns one"),
                    ));
                }
            }
        }
    }
    if let Instr::TSpawn { ra, .. } = *instr {
        if let SVal::Const(c) = st.sget(ra) {
            let target = c.to_u32();
            if target >= len {
                out.push(RawFinding::warn(
                    pc,
                    "W3006",
                    format!(
                        "`{text}` spawns a thread at pc {target}, outside the program (0..{len})"
                    ),
                ));
            }
        }
    }

    // --- live-handle overwrite ---------------------------------------------
    for d in instr.defs() {
        if d.class != RegClass::SGpr {
            continue;
        }
        let dreg = SReg::from_index(d.index);
        if let SVal::Handle { spawn_pc, released: false, escaped: false } = st.sget(dreg) {
            let another_copy = (0..NUM_GPRS).any(|i| {
                i != d.index as usize
                    && matches!(st.s[i],
                        SVal::Handle { spawn_pc: p, released: false, .. } if p == spawn_pc)
            });
            if !another_copy {
                out.push(
                    RawFinding::warn(
                        pc,
                        "W3005",
                        format!(
                            "`{text}` overwrites the only live handle of the thread spawned at \
                             pc {spawn_pc}"
                        ),
                    )
                    .with_note(
                        "the thread can no longer be joined or communicated with; join \
                                it first or keep a copy of the handle",
                    ),
                );
            }
        }
    }
}

fn op_name(op: Operand) -> String {
    match op.class {
        RegClass::SGpr => format!("s{}", op.index),
        RegClass::SFlag => format!("f{}", op.index),
        RegClass::PGpr => format!("p{}", op.index),
        RegClass::PFlag => format!("pf{}", op.index),
    }
}

/// The boot thread's *must-execute* prefix: walk from pc 0 following only
/// edges that are taken on every execution, stopping at anything
/// uncertain. Used to promote definite-fault findings to errors — every
/// pc in the returned set executes on every run of the program (up to the
/// first definite fault, where the walk also stops).
pub(crate) fn must_reach(
    main: &ContextStates,
    input: &Input,
    definite_faults: &BTreeSet<u32>,
) -> BTreeSet<u32> {
    let mut seen = BTreeSet::new();
    let mut pc: i64 = 0;
    let len = input.len() as i64;
    loop {
        if !(0..len).contains(&pc) || !seen.insert(pc as u32) {
            break;
        }
        let pc32 = pc as u32;
        let Some(st) = main.states.get(&pc32) else { break };
        let Ok(instr) = &input.imem[pc as usize] else { break };
        if definite_faults.contains(&pc32) {
            break;
        }
        // A spawned thread runs concurrently and can halt the whole
        // machine before the boot thread reaches a later pc, so nothing
        // after a tspawn is provably executed.
        if matches!(instr, Instr::TSpawn { .. }) {
            break;
        }
        match flow_of(pc32, instr, st, input) {
            Flow::Stop | Flow::Indirect(_) => break,
            Flow::Fall => pc += 1,
            Flow::Jump(t) => pc = t,
            Flow::Branch { taken, known } => match known {
                Some(true) => pc = taken,
                Some(false) => pc += 1,
                None => break,
            },
        }
    }
    seen
}

/// Run the full forward-analysis pipeline: contexts, scans, must-reach,
/// severity assignment, plus the unreachable-code sweep. Returns
/// diagnostics without source info (the caller attaches line/span), the
/// per-pc reachability vector, and the converged per-context states for
/// the later passes (the inter-thread race pass reuses them).
pub(crate) fn run(input: &Input) -> (Vec<Diagnostic>, Vec<bool>, Vec<ContextStates>) {
    let mut diags: Vec<Diagnostic> = Vec::new();
    if input.len() as usize > input.cfg.imem_words {
        diags.push(Diagnostic::new(
            Severity::Error,
            "E0004",
            0,
            format!(
                "program has {} instructions but instruction memory holds {}",
                input.len(),
                input.cfg.imem_words
            ),
        ));
        return (diags, vec![false; input.len() as usize], Vec::new());
    }
    let contexts = discover_contexts(input);
    let main = contexts.iter().find(|c| c.ctx.is_main).expect("boot context always analyzed");

    // Scan every context; findings from the boot thread first so
    // deduplication keeps the copy that may carry Error severity.
    let mut raw: Vec<(Context, RawFinding)> = Vec::new();
    for cs in
        contexts.iter().filter(|c| c.ctx.is_main).chain(contexts.iter().filter(|c| !c.ctx.is_main))
    {
        for f in scan(cs, input) {
            raw.push((cs.ctx, f));
        }
    }

    let definite_faults: BTreeSet<u32> = raw
        .iter()
        .filter(|(ctx, f)| ctx.is_main && f.definite && f.codes.0.starts_with('E'))
        .map(|(_, f)| f.pc)
        .collect();
    let must = must_reach(main, input, &definite_faults);

    let mut emitted: BTreeSet<(&'static str, u32, String)> = BTreeSet::new();
    for (ctx, f) in raw {
        let is_error =
            f.definite && ctx.is_main && must.contains(&f.pc) && f.codes.0.starts_with('E');
        let (severity, code) =
            if is_error { (Severity::Error, f.codes.0) } else { (Severity::Warning, f.codes.1) };
        if !emitted.insert((code, f.pc, f.message.clone())) {
            continue;
        }
        let mut d = Diagnostic::new(severity, code, f.pc, f.message);
        d.notes = f.notes;
        diags.push(d);
    }

    // --- unreachable-code sweep (one diagnostic per run) -------------------
    let mut reachable = vec![false; input.len() as usize];
    for cs in &contexts {
        for &pc in cs.states.keys() {
            reachable[pc as usize] = true;
        }
    }
    // A tspawn whose target register does not constant-fold can start a
    // thread at any label (worker entry stubs reached through an
    // incremented function-pointer register are the common shape), so
    // unreachability cannot be claimed for label-rooted code. Fold the
    // conservative label-rooted closure into the reachability map used by
    // W0006 and the later passes.
    let unknown_spawn = contexts.iter().any(|cs| {
        cs.states.iter().any(|(&pc, st)| {
            matches!(&input.imem[pc as usize], Ok(Instr::TSpawn { ra, .. })
                if !matches!(st.sget(*ra), SVal::Const(_)))
        })
    });
    if unknown_spawn {
        let mut seen = vec![false; input.len() as usize];
        let mut work: Vec<u32> =
            input.labels.iter().copied().filter(|&l| l < input.len()).collect();
        while let Some(pc) = work.pop() {
            if seen[pc as usize] {
                continue;
            }
            seen[pc as usize] = true;
            if let Ok(instr) = &input.imem[pc as usize] {
                work.extend(conservative_successors(pc, instr, input));
            }
        }
        for (r, s) in reachable.iter_mut().zip(&seen) {
            *r |= s;
        }
    }
    let mut pc = 0usize;
    while pc < reachable.len() {
        if reachable[pc] {
            pc += 1;
            continue;
        }
        let start = pc;
        while pc < reachable.len() && !reachable[pc] {
            pc += 1;
        }
        let n = pc - start;
        let msg = if n == 1 {
            "unreachable instruction".to_string()
        } else {
            format!("unreachable code ({n} instructions, pc {start}..{pc})")
        };
        diags.push(Diagnostic::new(Severity::Warning, "W0006", start as u32, msg).with_note(
            "no path from the boot thread or any statically resolved tspawn target reaches here",
        ));
    }

    (diags, reachable, contexts)
}

/// Successors on the *unfolded* CFG — no constant propagation, both arms
/// of every conditional. Used where over-approximating reachability is
/// the safe direction (the unknown-spawn closure above).
fn conservative_successors(pc: u32, instr: &Instr, input: &Input) -> Vec<u32> {
    let mut ts: Vec<i64> = Vec::new();
    match *instr {
        Instr::Halt | Instr::TExit => {}
        Instr::J { target } | Instr::Jal { target, .. } => ts.push(target as i64),
        Instr::Bt { off, .. } | Instr::Bf { off, .. } => {
            ts.push(pc as i64 + 1);
            ts.push(pc as i64 + 1 + off as i64);
        }
        Instr::Jr { .. } => {
            let cands: &[u32] =
                if !input.jal_returns.is_empty() { &input.jal_returns } else { &input.labels };
            ts.extend(cands.iter().map(|&c| c as i64));
        }
        _ => ts.push(pc as i64 + 1),
    }
    ts.into_iter().filter(|&t| (0..input.len() as i64).contains(&t)).map(|t| t as u32).collect()
}
