//! Register names: scalar/parallel general-purpose registers, scalar/parallel
//! flag registers, and the activity [`Mask`] field carried by every parallel
//! and reduction instruction.

use std::fmt;

use crate::{NUM_FLAGS, NUM_GPRS};

macro_rules! reg_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr, $count:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(u8);

        impl $name {
            /// Construct, returning `None` if `idx` is out of range.
            pub const fn new(idx: u8) -> Option<$name> {
                if (idx as usize) < $count {
                    Some($name(idx))
                } else {
                    None
                }
            }

            /// Construct without a range check.
            ///
            /// # Panics
            /// Panics if `idx` is out of range.
            pub fn from_index(idx: u8) -> $name {
                Self::new(idx).unwrap_or_else(|| {
                    panic!(concat!(stringify!($name), " index {} out of range"), idx)
                })
            }

            /// Register index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Raw encoded field value.
            pub const fn raw(self) -> u8 {
                self.0
            }

            /// Register 0 of this file.
            pub const R0: $name = $name(0);

            /// Iterate over every register of this file.
            pub fn all() -> impl Iterator<Item = $name> {
                (0..$count as u8).map($name)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }
    };
}

reg_type!(
    /// A scalar general-purpose register (`s0`..`s15`). `s0` reads as zero.
    SReg,
    "s",
    NUM_GPRS
);
reg_type!(
    /// A parallel general-purpose register (`p0`..`p15`), one instance per
    /// PE per thread. `p0` reads as zero.
    PReg,
    "p",
    NUM_GPRS
);
reg_type!(
    /// A scalar flag register (`f0`..`f7`): a 1-bit logical value in the
    /// control unit's flag register file.
    SFlag,
    "f",
    NUM_FLAGS
);
reg_type!(
    /// A parallel flag register (`pf0`..`pf7`), one bit per PE per thread.
    /// Comparison results and responder sets live here.
    PFlag,
    "pf",
    NUM_FLAGS
);

/// The activity mask of a parallel or reduction instruction.
///
/// Associative programs first *search* (a parallel comparison writing a flag
/// register) and then operate only on the *responders*. Every parallel and
/// reduction instruction therefore carries a mask field: either `All` (every
/// enabled PE participates) or `Flag(pf)` (only PEs whose `pf` bit is set
/// participate). Encoded as 4 bits: `1fff` for `Flag(fff)`, `0000` for `All`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Mask {
    /// All PEs participate.
    #[default]
    All,
    /// Only PEs whose given parallel flag is set participate.
    Flag(PFlag),
}

impl Mask {
    /// Encode to the 4-bit instruction field.
    pub fn to_bits(self) -> u32 {
        match self {
            Mask::All => 0,
            Mask::Flag(f) => 0x8 | f.raw() as u32,
        }
    }

    /// Decode from the 4-bit instruction field. Values `0001`..`0111` are
    /// reserved and rejected.
    pub fn from_bits(bits: u32) -> Option<Mask> {
        match bits {
            0 => Some(Mask::All),
            b if b & 0x8 != 0 => PFlag::new((b & 0x7) as u8).map(Mask::Flag),
            _ => None,
        }
    }

    /// The flag register this mask reads, if any.
    pub fn flag(self) -> Option<PFlag> {
        match self {
            Mask::All => None,
            Mask::Flag(f) => Some(f),
        }
    }
}

impl fmt::Display for Mask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mask::All => Ok(()),
            Mask::Flag(fl) => write!(f, "?{fl}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_ranges() {
        assert!(SReg::new(15).is_some());
        assert!(SReg::new(16).is_none());
        assert!(PFlag::new(7).is_some());
        assert!(PFlag::new(8).is_none());
        assert_eq!(SReg::all().count(), 16);
        assert_eq!(PFlag::all().count(), 8);
    }

    #[test]
    fn display() {
        assert_eq!(SReg::from_index(3).to_string(), "s3");
        assert_eq!(PReg::from_index(12).to_string(), "p12");
        assert_eq!(SFlag::from_index(0).to_string(), "f0");
        assert_eq!(PFlag::from_index(7).to_string(), "pf7");
        assert_eq!(Mask::All.to_string(), "");
        assert_eq!(Mask::Flag(PFlag::from_index(2)).to_string(), "?pf2");
    }

    #[test]
    fn mask_round_trip() {
        for m in [Mask::All, Mask::Flag(PFlag::from_index(0)), Mask::Flag(PFlag::from_index(7))] {
            assert_eq!(Mask::from_bits(m.to_bits()), Some(m));
        }
        // reserved encodings rejected
        for bits in 1..8 {
            assert_eq!(Mask::from_bits(bits), None);
        }
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let _ = SReg::from_index(16);
    }
}
