//! Machine word semantics.
//!
//! The MTASC prototype family used 8-bit PEs; this implementation makes the
//! datapath width configurable (8, 16, or 32 bits). A [`Word`] is stored as
//! a `u32` whose bits above the configured [`Width`] are always zero; all
//! arithmetic wraps (or saturates, where specified) at that width.

use std::fmt;

/// Datapath width of the machine (scalar datapath and every PE).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Width {
    /// 8-bit datapath — the width of the FPGA prototype family.
    W8,
    /// 16-bit datapath.
    W16,
    /// 32-bit datapath.
    W32,
}

impl Width {
    /// Number of bits.
    pub const fn bits(self) -> u32 {
        match self {
            Width::W8 => 8,
            Width::W16 => 16,
            Width::W32 => 32,
        }
    }

    /// Bit mask selecting the valid bits of a word.
    pub const fn mask(self) -> u32 {
        match self {
            Width::W8 => 0xff,
            Width::W16 => 0xffff,
            Width::W32 => 0xffff_ffff,
        }
    }

    /// Largest representable signed value.
    pub const fn smax(self) -> i64 {
        (self.mask() >> 1) as i64
    }

    /// Smallest representable signed value.
    pub const fn smin(self) -> i64 {
        -(self.smax() + 1)
    }

    /// All widths, smallest first.
    pub const ALL: [Width; 3] = [Width::W8, Width::W16, Width::W32];
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-bit", self.bits())
    }
}

/// A machine word: an unsigned value truncated to a [`Width`].
///
/// `Word` deliberately does not carry its width; operations take the width
/// as a parameter (it is a machine-wide configuration constant, and storing
/// it per value would double the memory footprint of the PE array).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Word(pub u32);

impl Word {
    /// The zero word.
    pub const ZERO: Word = Word(0);

    /// Construct from a raw `u32`, truncating to `w`.
    pub fn new(v: u32, w: Width) -> Word {
        Word(v & w.mask())
    }

    /// Construct from a signed value, truncating to `w` (two's complement).
    pub fn from_i64(v: i64, w: Width) -> Word {
        Word((v as u32) & w.mask())
    }

    /// Unsigned value of the word.
    pub fn to_u32(self) -> u32 {
        self.0
    }

    /// Signed (two's complement) value of the word at width `w`.
    pub fn to_i64(self, w: Width) -> i64 {
        let bits = w.bits();
        if bits == 32 {
            self.0 as i32 as i64
        } else {
            let sign = 1u32 << (bits - 1);
            if self.0 & sign != 0 {
                (self.0 as i64) - (1i64 << bits)
            } else {
                self.0 as i64
            }
        }
    }

    /// True if any bit is set.
    pub fn is_nonzero(self) -> bool {
        self.0 != 0
    }

    /// Wrapping addition at width `w`.
    pub fn wrapping_add(self, rhs: Word, w: Width) -> Word {
        Word(self.0.wrapping_add(rhs.0) & w.mask())
    }

    /// Wrapping subtraction at width `w`.
    pub fn wrapping_sub(self, rhs: Word, w: Width) -> Word {
        Word(self.0.wrapping_sub(rhs.0) & w.mask())
    }

    /// Saturating signed addition at width `w` (used by the sum-reduction
    /// network: "if overflow occurs while computing the sum, the result is
    /// saturated to the largest or smallest representable value").
    pub fn saturating_add_signed(self, rhs: Word, w: Width) -> Word {
        let s = self.to_i64(w) + rhs.to_i64(w);
        Word::from_i64(s.clamp(w.smin(), w.smax()), w)
    }

    /// Bitwise AND.
    pub fn and(self, rhs: Word) -> Word {
        Word(self.0 & rhs.0)
    }

    /// Bitwise OR.
    pub fn or(self, rhs: Word) -> Word {
        Word(self.0 | rhs.0)
    }

    /// Bitwise XOR.
    pub fn xor(self, rhs: Word) -> Word {
        Word(self.0 ^ rhs.0)
    }

    /// Bitwise NOR at width `w`.
    pub fn nor(self, rhs: Word, w: Width) -> Word {
        Word(!(self.0 | rhs.0) & w.mask())
    }

    /// Logical left shift by `rhs` (modulo the width), truncated to `w`.
    pub fn shl(self, rhs: Word, w: Width) -> Word {
        let sh = rhs.0 % w.bits();
        Word((self.0 << sh) & w.mask())
    }

    /// Logical right shift by `rhs` (modulo the width).
    pub fn shr(self, rhs: Word, w: Width) -> Word {
        let sh = rhs.0 % w.bits();
        Word(self.0 >> sh)
    }

    /// Arithmetic right shift by `rhs` (modulo the width).
    pub fn sar(self, rhs: Word, w: Width) -> Word {
        let sh = rhs.0 % w.bits();
        Word::from_i64(self.to_i64(w) >> sh, w)
    }

    /// Low word of the signed product at width `w`.
    pub fn mul_lo(self, rhs: Word, w: Width) -> Word {
        Word::from_i64(self.to_i64(w).wrapping_mul(rhs.to_i64(w)), w)
    }

    /// High word of the signed product at width `w`.
    pub fn mul_hi(self, rhs: Word, w: Width) -> Word {
        let p = self.to_i64(w).wrapping_mul(rhs.to_i64(w));
        Word::from_i64(p >> w.bits(), w)
    }

    /// Signed division at width `w`. Division by zero is defined (the
    /// hardware must do *something*): the quotient is all ones.
    pub fn div_signed(self, rhs: Word, w: Width) -> Word {
        let b = rhs.to_i64(w);
        if b == 0 {
            Word(w.mask())
        } else {
            Word::from_i64(self.to_i64(w).wrapping_div(b), w)
        }
    }

    /// Signed remainder at width `w`. Remainder of division by zero is the
    /// dividend.
    pub fn rem_signed(self, rhs: Word, w: Width) -> Word {
        let b = rhs.to_i64(w);
        if b == 0 {
            self
        } else {
            Word::from_i64(self.to_i64(w).wrapping_rem(b), w)
        }
    }

    /// Signed minimum at width `w`.
    pub fn min_signed(self, rhs: Word, w: Width) -> Word {
        if self.to_i64(w) <= rhs.to_i64(w) {
            self
        } else {
            rhs
        }
    }

    /// Signed maximum at width `w`.
    pub fn max_signed(self, rhs: Word, w: Width) -> Word {
        if self.to_i64(w) >= rhs.to_i64(w) {
            self
        } else {
            rhs
        }
    }

    /// Unsigned minimum.
    pub fn min_unsigned(self, rhs: Word) -> Word {
        if self.0 <= rhs.0 {
            self
        } else {
            rhs
        }
    }

    /// Unsigned maximum.
    pub fn max_unsigned(self, rhs: Word) -> Word {
        if self.0 >= rhs.0 {
            self
        } else {
            rhs
        }
    }
}

impl fmt::Display for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u32> for Word {
    /// Untruncated conversion; the caller is responsible for masking (use
    /// [`Word::new`] when a width is in scope).
    fn from(v: u32) -> Word {
        Word(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths() {
        assert_eq!(Width::W8.bits(), 8);
        assert_eq!(Width::W8.mask(), 0xff);
        assert_eq!(Width::W8.smax(), 127);
        assert_eq!(Width::W8.smin(), -128);
        assert_eq!(Width::W16.smax(), 32767);
        assert_eq!(Width::W32.smin(), i32::MIN as i64);
        assert_eq!(Width::W32.smax(), i32::MAX as i64);
    }

    #[test]
    fn signed_round_trip() {
        for w in Width::ALL {
            for v in [-1i64, 0, 1, w.smin(), w.smax(), -17, 42] {
                let word = Word::from_i64(v, w);
                assert_eq!(word.to_i64(w), v, "width {w}: {v}");
            }
        }
    }

    #[test]
    fn wrapping_arithmetic() {
        let w = Width::W8;
        assert_eq!(Word::new(0xff, w).wrapping_add(Word::new(1, w), w), Word::ZERO);
        assert_eq!(Word::new(0, w).wrapping_sub(Word::new(1, w), w), Word::new(0xff, w));
    }

    #[test]
    fn saturating_add() {
        let w = Width::W8;
        let big = Word::from_i64(120, w);
        assert_eq!(big.saturating_add_signed(big, w).to_i64(w), 127);
        let small = Word::from_i64(-120, w);
        assert_eq!(small.saturating_add_signed(small, w).to_i64(w), -128);
        assert_eq!(big.saturating_add_signed(Word::from_i64(-3, w), w).to_i64(w), 117);
    }

    #[test]
    fn shifts_mask_amount() {
        let w = Width::W8;
        // shift amount is taken modulo the width
        assert_eq!(Word::new(1, w).shl(Word::new(9, w), w), Word::new(2, w));
        assert_eq!(Word::new(0x80, w).sar(Word::new(1, w), w), Word::new(0xc0, w));
        assert_eq!(Word::new(0x80, w).shr(Word::new(1, w), w), Word::new(0x40, w));
    }

    #[test]
    fn mul_hi_lo() {
        let w = Width::W8;
        let a = Word::from_i64(100, w);
        let b = Word::from_i64(100, w);
        // 100*100 = 10000 = 0x2710
        assert_eq!(a.mul_lo(b, w), Word::new(0x10, w));
        assert_eq!(a.mul_hi(b, w), Word::new(0x27, w));
        let neg = Word::from_i64(-1, w);
        assert_eq!(neg.mul_lo(neg, w).to_i64(w), 1);
        assert_eq!(neg.mul_hi(neg, w).to_i64(w), 0);
    }

    #[test]
    fn division_by_zero_is_defined() {
        let w = Width::W16;
        let a = Word::from_i64(1234, w);
        assert_eq!(a.div_signed(Word::ZERO, w), Word(w.mask()));
        assert_eq!(a.rem_signed(Word::ZERO, w), a);
    }

    #[test]
    fn min_max_signedness() {
        let w = Width::W8;
        let a = Word::from_i64(-1, w); // 0xff unsigned
        let b = Word::from_i64(1, w);
        assert_eq!(a.min_signed(b, w), a);
        assert_eq!(a.max_signed(b, w), b);
        assert_eq!(a.min_unsigned(b), b);
        assert_eq!(a.max_unsigned(b), a);
    }
}
