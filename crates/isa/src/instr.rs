//! Decoded instruction representation and operand introspection.

use std::fmt;

use crate::ops::{AluOp, CmpOp, FlagOp, FlagReduceOp, ReduceOp};
use crate::reg::{Mask, PFlag, PReg, SFlag, SReg};

/// The three pipeline classes of Section 4.1 of the paper: scalar
/// instructions execute within the control unit; parallel instructions
/// execute on the PE array and use the broadcast network; reduction
/// instructions use both the broadcast and the reduction network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Executes in the control unit's scalar datapath.
    Scalar,
    /// Executes on the PE array; traverses the broadcast network.
    Parallel,
    /// Executes on the PE array; traverses broadcast *and* reduction
    /// networks.
    Reduction,
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InstrClass::Scalar => "scalar",
            InstrClass::Parallel => "parallel",
            InstrClass::Reduction => "reduction",
        })
    }
}

/// The four architectural register files (per thread).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegClass {
    /// Scalar general-purpose register.
    SGpr,
    /// Scalar flag register.
    SFlag,
    /// Parallel general-purpose register (replicated per PE).
    PGpr,
    /// Parallel flag register (replicated per PE).
    PFlag,
}

/// A register operand: file plus index. Used by the scoreboard for hazard
/// detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Operand {
    /// Which register file.
    pub class: RegClass,
    /// Index within the file.
    pub index: u8,
}

impl Operand {
    /// Scalar GPR operand.
    pub fn s(r: SReg) -> Operand {
        Operand { class: RegClass::SGpr, index: r.raw() }
    }
    /// Scalar flag operand.
    pub fn sf(f: SFlag) -> Operand {
        Operand { class: RegClass::SFlag, index: f.raw() }
    }
    /// Parallel GPR operand.
    pub fn p(r: PReg) -> Operand {
        Operand { class: RegClass::PGpr, index: r.raw() }
    }
    /// Parallel flag operand.
    pub fn pf(f: PFlag) -> Operand {
        Operand { class: RegClass::PFlag, index: f.raw() }
    }
    /// True if this operand is the hardwired zero register of a GPR file
    /// (never a real dependency).
    pub fn is_zero_gpr(self) -> bool {
        matches!(self.class, RegClass::SGpr | RegClass::PGpr) && self.index == 0
    }
}

/// A fixed-capacity operand list, returned by [`Instr::reads`] and
/// [`Instr::writes`]. The scheduler interrogates operands on every issue
/// *attempt* (including stalled ones), so the list lives on the stack —
/// no instruction names more than four register operands (two sources, a
/// store-data/base pair, plus the activity mask flag).
///
/// It dereferences to `&[Operand]` and compares equal to a
/// `Vec<Operand>` with the same contents, so call sites read like the
/// `Vec`-returning API it replaces.
#[derive(Debug, Clone, Copy)]
pub struct OperandList {
    ops: [Operand; 4],
    len: u8,
}

impl OperandList {
    const fn new() -> OperandList {
        OperandList { ops: [Operand { class: RegClass::SGpr, index: 0 }; 4], len: 0 }
    }

    /// Append an operand, silently dropping hardwired zero GPRs (they are
    /// never a real dependency).
    fn push(&mut self, op: Operand) {
        if op.is_zero_gpr() {
            return;
        }
        self.ops[self.len as usize] = op;
        self.len += 1;
    }

    /// The operands as a slice.
    pub fn as_slice(&self) -> &[Operand] {
        &self.ops[..self.len as usize]
    }
}

impl std::ops::Deref for OperandList {
    type Target = [Operand];
    fn deref(&self) -> &[Operand] {
        self.as_slice()
    }
}

impl IntoIterator for OperandList {
    type Item = Operand;
    type IntoIter = std::iter::Take<std::array::IntoIter<Operand, 4>>;
    fn into_iter(self) -> Self::IntoIter {
        self.ops.into_iter().take(self.len as usize)
    }
}

impl<'a> IntoIterator for &'a OperandList {
    type Item = &'a Operand;
    type IntoIter = std::slice::Iter<'a, Operand>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl PartialEq for OperandList {
    fn eq(&self, other: &OperandList) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for OperandList {}

impl PartialEq<Vec<Operand>> for OperandList {
    fn eq(&self, other: &Vec<Operand>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<OperandList> for Vec<Operand> {
    fn eq(&self, other: &OperandList) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// A fully decoded MTASC instruction.
///
/// Immediates are stored sign-extended. Branch offsets are in instruction
/// words, relative to the *next* instruction. Jump targets are absolute
/// instruction addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // operand fields are described in each variant's doc
pub enum Instr {
    // ------------------------------------------------------ scalar
    /// No operation.
    Nop,
    /// Stop the whole machine.
    Halt,
    /// Scalar ALU, register-register: `rd = ra op rb`.
    SAlu { op: AluOp, rd: SReg, ra: SReg, rb: SReg },
    /// Scalar ALU, register-immediate: `rd = ra op imm`.
    SAluImm { op: AluOp, rd: SReg, ra: SReg, imm: i16 },
    /// Scalar comparison: `fd = ra cmp rb`.
    SCmp { op: CmpOp, fd: SFlag, ra: SReg, rb: SReg },
    /// Scalar comparison with immediate: `fd = ra cmp imm`.
    SCmpImm { op: CmpOp, fd: SFlag, ra: SReg, imm: i16 },
    /// Scalar flag logic: `fd = fa op fb`.
    SFlagOp { op: FlagOp, fd: SFlag, fa: SFlag, fb: SFlag },
    /// Load word from scalar memory: `rd = mem[ra + off]`.
    Lw { rd: SReg, base: SReg, off: i16 },
    /// Store word to scalar memory: `mem[ra + off] = rs`.
    Sw { rs: SReg, base: SReg, off: i16 },
    /// Load immediate (sign-extended): `rd = imm`.
    Li { rd: SReg, imm: i16 },
    /// Load upper immediate: `rd = imm << (width/2)` — pairs with `ori` to
    /// build full-width constants on 32-bit machines.
    Lui { rd: SReg, imm: u16 },
    /// Branch if flag true: `if fa { pc += 1 + off }`.
    Bt { fa: SFlag, off: i16 },
    /// Branch if flag false.
    Bf { fa: SFlag, off: i16 },
    /// Unconditional jump to absolute instruction address.
    J { target: u32 },
    /// Jump and link: `rd = pc + 1; pc = target`.
    Jal { rd: SReg, target: u32 },
    /// Jump to register.
    Jr { ra: SReg },

    // ------------------------------------------------------ threads
    /// Allocate a hardware thread starting at the address in `ra`;
    /// `rd` receives the new thread id, or all-ones if none is free.
    TSpawn { rd: SReg, ra: SReg },
    /// Release the executing hardware thread.
    TExit,
    /// Block until the thread whose id is in `ra` has exited.
    TJoin { ra: SReg },
    /// Inter-thread read: `rd = scalar register `src` of thread `ta``.
    TGet { rd: SReg, ta: SReg, src: SReg },
    /// Inter-thread write: `scalar register `dst` of thread `ta` = rb`.
    TPut { ta: SReg, dst: SReg, rb: SReg },
    /// Read the executing thread's id.
    TId { rd: SReg },

    // ------------------------------------------------------ parallel
    /// Parallel ALU, register-register: `pd = pa op pb` in active PEs.
    PAlu { op: AluOp, pd: PReg, pa: PReg, pb: PReg, mask: Mask },
    /// Parallel ALU with broadcast scalar operand: `pd = pa op broadcast(sb)`
    /// ("most parallel instructions allow one of the operands to be a scalar
    /// value that is broadcast to the PE array").
    PAluS { op: AluOp, pd: PReg, pa: PReg, sb: SReg, mask: Mask },
    /// Parallel ALU with immediate: `pd = pa op imm` (imm8, sign-extended).
    PAluImm { op: AluOp, pd: PReg, pa: PReg, imm: i8, mask: Mask },
    /// Parallel comparison: `fd = pa cmp pb` — the associative *search*.
    PCmp { op: CmpOp, fd: PFlag, pa: PReg, pb: PReg, mask: Mask },
    /// Parallel comparison against a broadcast scalar.
    PCmpS { op: CmpOp, fd: PFlag, pa: PReg, sb: SReg, mask: Mask },
    /// Parallel comparison against an immediate (imm8, sign-extended).
    PCmpImm { op: CmpOp, fd: PFlag, pa: PReg, imm: i8, mask: Mask },
    /// Parallel flag logic.
    PFlagOp { op: FlagOp, fd: PFlag, fa: PFlag, fb: PFlag, mask: Mask },
    /// Parallel load from PE local memory: `pd = lmem[pa + off]`.
    Plw { pd: PReg, base: PReg, off: i8, mask: Mask },
    /// Parallel store to PE local memory: `lmem[pa + off] = ps`.
    Psw { ps: PReg, base: PReg, off: i8, mask: Mask },
    /// Write each PE's index into `pd` (truncated to the machine width).
    Pidx { pd: PReg, mask: Mask },
    /// Broadcast a scalar register into a parallel register: `pd = sa`.
    PMovS { pd: PReg, sa: SReg, mask: Mask },
    /// Inter-PE shift: `pd[i] = pa[i - dist]` (zero shifted in at the
    /// array boundary). The STARAN-heritage reconfigurable PE
    /// interconnection network of the lineage's embedded-applications
    /// processor \[7\]; an extension over the paper's base prototype.
    PShift { pd: PReg, pa: PReg, dist: i8, mask: Mask },

    // ------------------------------------------------------ reduction
    /// Reduce a parallel register into a scalar: `sd = reduce(op, pa)` over
    /// active PEs (bitwise AND/OR, signed/unsigned max/min, saturating sum).
    Reduce { op: ReduceOp, sd: SReg, pa: PReg, mask: Mask },
    /// Exact responder count: `sd = |{active PEs with fa set}|`.
    RCount { sd: SReg, fa: PFlag, mask: Mask },
    /// Flag reduction (responder detection): `fd = any/all(fa)`.
    RFlag { op: FlagReduceOp, fd: SFlag, fa: PFlag, mask: Mask },
    /// Multiple response resolver: `fd = first responder of fa` — a
    /// *parallel* result with at most one bit set (pipelined parallel
    /// prefix network).
    PFirst { fd: PFlag, fa: PFlag, mask: Mask },
    /// Pick-one-and-read: `sd = pa` at the first responder of `fa`
    /// (zero if there are no responders).
    RGet { sd: SReg, pa: PReg, fa: PFlag, mask: Mask },
}

impl Instr {
    /// Pipeline class of this instruction (Section 4.1).
    pub fn class(&self) -> InstrClass {
        use Instr::*;
        match self {
            Nop
            | Halt
            | SAlu { .. }
            | SAluImm { .. }
            | SCmp { .. }
            | SCmpImm { .. }
            | SFlagOp { .. }
            | Lw { .. }
            | Sw { .. }
            | Li { .. }
            | Lui { .. }
            | Bt { .. }
            | Bf { .. }
            | J { .. }
            | Jal { .. }
            | Jr { .. }
            | TSpawn { .. }
            | TExit
            | TJoin { .. }
            | TGet { .. }
            | TPut { .. }
            | TId { .. } => InstrClass::Scalar,
            PAlu { .. }
            | PAluS { .. }
            | PAluImm { .. }
            | PCmp { .. }
            | PCmpS { .. }
            | PCmpImm { .. }
            | PFlagOp { .. }
            | Plw { .. }
            | Psw { .. }
            | Pidx { .. }
            | PMovS { .. }
            | PShift { .. } => InstrClass::Parallel,
            Reduce { .. } | RCount { .. } | RFlag { .. } | PFirst { .. } | RGet { .. } => {
                InstrClass::Reduction
            }
        }
    }

    /// True for control-transfer instructions (the thread's next fetch
    /// depends on this instruction's outcome).
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Instr::Bt { .. }
                | Instr::Bf { .. }
                | Instr::J { .. }
                | Instr::Jal { .. }
                | Instr::Jr { .. }
        )
    }

    /// True if this instruction reads or writes PE local memory.
    pub fn touches_local_memory(&self) -> bool {
        matches!(self, Instr::Plw { .. } | Instr::Psw { .. })
    }

    /// True if this instruction may join a *fusible parallel basic
    /// block* — a straight-line run the block-fusion engine executes
    /// tile-by-tile. The predicate admits exactly the lane-local
    /// PARALLEL-class forms: each active PE's result depends only on that
    /// PE's own registers, flag bits, and local-memory column. Everything
    /// that couples lanes or touches scalar state ends a block: scalar
    /// and control-flow instructions, thread management, reductions (the
    /// reduction network), scalar-operand broadcasts (`PAluS`, `PCmpS`,
    /// `PMovS` read the scalar register file at B1), and the inter-PE
    /// shift network.
    pub fn is_fusible(&self) -> bool {
        matches!(
            self,
            Instr::PAlu { .. }
                | Instr::PAluImm { .. }
                | Instr::PCmp { .. }
                | Instr::PCmpImm { .. }
                | Instr::PFlagOp { .. }
                | Instr::Plw { .. }
                | Instr::Psw { .. }
                | Instr::Pidx { .. }
        )
    }

    /// The mask field, for parallel/reduction instructions.
    pub fn mask(&self) -> Option<Mask> {
        use Instr::*;
        match self {
            PAlu { mask, .. }
            | PAluS { mask, .. }
            | PAluImm { mask, .. }
            | PCmp { mask, .. }
            | PCmpS { mask, .. }
            | PCmpImm { mask, .. }
            | PFlagOp { mask, .. }
            | Plw { mask, .. }
            | Psw { mask, .. }
            | Pidx { mask, .. }
            | PMovS { mask, .. }
            | PShift { mask, .. }
            | Reduce { mask, .. }
            | RCount { mask, .. }
            | RFlag { mask, .. }
            | PFirst { mask, .. }
            | RGet { mask, .. } => Some(*mask),
            _ => None,
        }
    }

    /// Registers read by this instruction — the canonical *use* set,
    /// including the activity-mask flag. Hardwired zero registers are
    /// filtered out (they are never a dependency).
    ///
    /// This is the single source of truth for operand extraction: the
    /// machine's scheduler/scoreboard and the `asc-verify` static
    /// analyzer both consume it, so a hazard the simulator would stall on
    /// and a dependency the linter reasons about can never disagree.
    /// [`Instr::reads`] is the same list under its historical name.
    pub fn uses(&self) -> OperandList {
        use Instr::*;
        let mut v = OperandList::new();
        match *self {
            Nop | Halt | Li { .. } | Lui { .. } | J { .. } | Jal { .. } | TExit | TId { .. } => {}
            SAlu { ra, rb, .. } => {
                v.push(Operand::s(ra));
                v.push(Operand::s(rb));
            }
            SAluImm { ra, .. } => v.push(Operand::s(ra)),
            SCmp { ra, rb, .. } => {
                v.push(Operand::s(ra));
                v.push(Operand::s(rb));
            }
            SCmpImm { ra, .. } => v.push(Operand::s(ra)),
            SFlagOp { op, fa, fb, .. } => {
                if op.arity() >= 1 {
                    v.push(Operand::sf(fa));
                }
                if op.arity() >= 2 {
                    v.push(Operand::sf(fb));
                }
            }
            Lw { base, .. } => v.push(Operand::s(base)),
            Sw { rs, base, .. } => {
                v.push(Operand::s(rs));
                v.push(Operand::s(base));
            }
            Bt { fa, .. } | Bf { fa, .. } => v.push(Operand::sf(fa)),
            Jr { ra } | TJoin { ra } | TSpawn { ra, .. } => v.push(Operand::s(ra)),
            TGet { ta, .. } => v.push(Operand::s(ta)),
            TPut { ta, rb, .. } => {
                v.push(Operand::s(ta));
                v.push(Operand::s(rb));
            }
            PAlu { pa, pb, .. } => {
                v.push(Operand::p(pa));
                v.push(Operand::p(pb));
            }
            PAluS { pa, sb, .. } => {
                v.push(Operand::p(pa));
                v.push(Operand::s(sb));
            }
            PAluImm { pa, .. } => v.push(Operand::p(pa)),
            PCmp { pa, pb, .. } => {
                v.push(Operand::p(pa));
                v.push(Operand::p(pb));
            }
            PCmpS { pa, sb, .. } => {
                v.push(Operand::p(pa));
                v.push(Operand::s(sb));
            }
            PCmpImm { pa, .. } => v.push(Operand::p(pa)),
            PFlagOp { op, fa, fb, .. } => {
                if op.arity() >= 1 {
                    v.push(Operand::pf(fa));
                }
                if op.arity() >= 2 {
                    v.push(Operand::pf(fb));
                }
            }
            Plw { base, .. } => v.push(Operand::p(base)),
            Psw { ps, base, .. } => {
                v.push(Operand::p(ps));
                v.push(Operand::p(base));
            }
            Pidx { .. } => {}
            PMovS { sa, .. } => v.push(Operand::s(sa)),
            PShift { pa, .. } => v.push(Operand::p(pa)),
            Reduce { pa, .. } => v.push(Operand::p(pa)),
            RCount { fa, .. } => v.push(Operand::pf(fa)),
            RFlag { fa, .. } => v.push(Operand::pf(fa)),
            PFirst { fa, .. } => v.push(Operand::pf(fa)),
            RGet { pa, fa, .. } => {
                v.push(Operand::p(pa));
                v.push(Operand::pf(fa));
            }
        }
        if let Some(Mask::Flag(f)) = self.mask() {
            v.push(Operand::pf(f));
        }
        v
    }

    /// Registers written by this instruction — the canonical *def* set.
    /// Writes to the hardwired zero registers are filtered out.
    ///
    /// Like [`Instr::uses`], this is the one operand-extraction match in
    /// the workspace; [`Instr::writes`] is the same list under its
    /// historical name.
    pub fn defs(&self) -> OperandList {
        use Instr::*;
        let mut v = OperandList::new();
        match *self {
            SAlu { rd, .. }
            | SAluImm { rd, .. }
            | Lw { rd, .. }
            | Li { rd, .. }
            | Lui { rd, .. }
            | Jal { rd, .. }
            | TSpawn { rd, .. }
            | TGet { rd, .. }
            | TId { rd } => v.push(Operand::s(rd)),
            SCmp { fd, .. } | SCmpImm { fd, .. } | SFlagOp { fd, .. } => v.push(Operand::sf(fd)),
            PAlu { pd, .. }
            | PAluS { pd, .. }
            | PAluImm { pd, .. }
            | Plw { pd, .. }
            | Pidx { pd, .. }
            | PMovS { pd, .. }
            | PShift { pd, .. } => v.push(Operand::p(pd)),
            PCmp { fd, .. }
            | PCmpS { fd, .. }
            | PCmpImm { fd, .. }
            | PFlagOp { fd, .. }
            | PFirst { fd, .. } => v.push(Operand::pf(fd)),
            Reduce { sd, .. } | RCount { sd, .. } | RGet { sd, .. } => v.push(Operand::s(sd)),
            RFlag { fd, .. } => v.push(Operand::sf(fd)),
            // TPut writes a *foreign* thread's register; it has no local
            // register destination. The simulator serializes inter-thread
            // transfers at issue time.
            Nop
            | Halt
            | Sw { .. }
            | Bt { .. }
            | Bf { .. }
            | J { .. }
            | Jr { .. }
            | TExit
            | TJoin { .. }
            | TPut { .. }
            | Psw { .. } => {}
        }
        v
    }

    /// Registers read by this instruction (scheduler-facing name for
    /// [`Instr::uses`]).
    pub fn reads(&self) -> OperandList {
        self.uses()
    }

    /// Registers written by this instruction (scheduler-facing name for
    /// [`Instr::defs`]).
    pub fn writes(&self) -> OperandList {
        self.defs()
    }

    /// True if execution uses the multiplier functional unit.
    pub fn uses_multiplier(&self) -> bool {
        match self {
            Instr::SAlu { op, .. }
            | Instr::SAluImm { op, .. }
            | Instr::PAlu { op, .. }
            | Instr::PAluS { op, .. }
            | Instr::PAluImm { op, .. } => op.uses_multiplier(),
            _ => false,
        }
    }

    /// True if execution uses the sequential divider.
    pub fn uses_divider(&self) -> bool {
        match self {
            Instr::SAlu { op, .. }
            | Instr::SAluImm { op, .. }
            | Instr::PAlu { op, .. }
            | Instr::PAluS { op, .. }
            | Instr::PAluImm { op, .. } => op.uses_divider(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u8) -> SReg {
        SReg::from_index(i)
    }
    fn p(i: u8) -> PReg {
        PReg::from_index(i)
    }
    fn pf(i: u8) -> PFlag {
        PFlag::from_index(i)
    }

    #[test]
    fn classes() {
        assert_eq!(Instr::Nop.class(), InstrClass::Scalar);
        assert_eq!(
            Instr::PAlu { op: AluOp::Add, pd: p(1), pa: p(2), pb: p(3), mask: Mask::All }.class(),
            InstrClass::Parallel
        );
        assert_eq!(
            Instr::Reduce { op: ReduceOp::Max, sd: s(1), pa: p(2), mask: Mask::All }.class(),
            InstrClass::Reduction
        );
        assert_eq!(
            Instr::PFirst { fd: pf(1), fa: pf(2), mask: Mask::All }.class(),
            InstrClass::Reduction
        );
        assert_eq!(Instr::TSpawn { rd: s(1), ra: s(2) }.class(), InstrClass::Scalar);
    }

    #[test]
    fn reads_include_mask() {
        let i =
            Instr::PAlu { op: AluOp::Add, pd: p(1), pa: p(2), pb: p(3), mask: Mask::Flag(pf(5)) };
        let reads = i.reads();
        assert!(reads.contains(&Operand::pf(pf(5))));
        assert!(reads.contains(&Operand::p(p(2))));
        assert!(reads.contains(&Operand::p(p(3))));
        assert_eq!(i.writes(), vec![Operand::p(p(1))]);
    }

    #[test]
    fn zero_reg_is_not_a_dependency() {
        let i = Instr::SAlu { op: AluOp::Add, rd: s(0), ra: s(0), rb: s(2) };
        assert_eq!(i.reads(), vec![Operand::s(s(2))]);
        assert!(i.writes().is_empty());
    }

    #[test]
    fn flag_arity_limits_reads() {
        let i = Instr::SFlagOp {
            op: FlagOp::Set,
            fd: SFlag::from_index(1),
            fa: SFlag::from_index(2),
            fb: SFlag::from_index(3),
        };
        assert!(i.reads().is_empty());
        let i = Instr::SFlagOp {
            op: FlagOp::Not,
            fd: SFlag::from_index(1),
            fa: SFlag::from_index(2),
            fb: SFlag::from_index(3),
        };
        assert_eq!(i.reads().len(), 1);
    }

    #[test]
    fn functional_unit_usage() {
        let m = Instr::PAlu { op: AluOp::Mul, pd: p(1), pa: p(2), pb: p(3), mask: Mask::All };
        assert!(m.uses_multiplier());
        assert!(!m.uses_divider());
        let d = Instr::SAluImm { op: AluOp::Rem, rd: s(1), ra: s(2), imm: 3 };
        assert!(d.uses_divider());
        assert!(!Instr::Nop.uses_multiplier());
    }

    /// `defs()`/`uses()` are the scoreboard's operand extraction — the
    /// scheduler calls them through the `writes()`/`reads()` names. Fuzz
    /// every instruction form and check the two APIs agree exactly and
    /// uphold the invariants the scoreboard depends on: the mask flag is
    /// a use, zero GPRs never appear, and no def is class-less.
    #[test]
    fn defs_uses_agree_with_scoreboard_extraction() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..20_000 {
            let i = crate::gen::random_instr(&mut rng);
            assert_eq!(i.uses(), i.reads(), "{i:?}");
            assert_eq!(i.defs(), i.writes(), "{i:?}");
            for op in i.uses().iter().chain(i.defs().iter()) {
                assert!(!op.is_zero_gpr(), "zero GPR leaked from {i:?}");
            }
            if let Some(Mask::Flag(f)) = i.mask() {
                assert!(i.uses().contains(&Operand::pf(f)), "mask flag missing from uses: {i:?}");
            }
        }
    }

    #[test]
    fn branch_detection() {
        assert!(Instr::J { target: 0 }.is_branch());
        assert!(Instr::Jr { ra: s(1) }.is_branch());
        assert!(Instr::Bt { fa: SFlag::from_index(0), off: -1 }.is_branch());
        assert!(!Instr::Nop.is_branch());
    }
}
