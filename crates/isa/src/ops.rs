//! Operation kinds shared by scalar and parallel instructions, plus the
//! reduction operations implemented by the broadcast/reduction network.

use std::fmt;

use crate::word::{Width, Word};

macro_rules! op_enum {
    ($(#[$doc:meta])* $name:ident { $($variant:ident = $code:expr => $mnem:expr),+ $(,)? }) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[repr(u8)]
        pub enum $name {
            $(
                #[allow(missing_docs)]
                $variant = $code,
            )+
        }

        impl $name {
            /// All variants, in opcode order.
            pub const ALL: &'static [$name] = &[$($name::$variant),+];

            /// Sub-opcode offset within the instruction family.
            pub const fn code(self) -> u8 {
                self as u8
            }

            /// Decode from a sub-opcode offset.
            pub fn from_code(code: u8) -> Option<$name> {
                match code {
                    $($code => Some($name::$variant),)+
                    _ => None,
                }
            }

            /// Mnemonic suffix used by the assembler.
            pub const fn mnemonic(self) -> &'static str {
                match self {
                    $($name::$variant => $mnem,)+
                }
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(self.mnemonic())
            }
        }
    };
}

op_enum!(
    /// Arithmetic/logic operations, available in scalar and parallel forms.
    AluOp {
        Add = 0 => "add",
        Sub = 1 => "sub",
        And = 2 => "and",
        Or = 3 => "or",
        Xor = 4 => "xor",
        Nor = 5 => "nor",
        Sll = 6 => "sll",
        Srl = 7 => "srl",
        Sra = 8 => "sra",
        Mul = 9 => "mul",
        Mulh = 10 => "mulh",
        Div = 11 => "div",
        Rem = 12 => "rem",
        Min = 13 => "min",
        Max = 14 => "max",
        MinU = 15 => "minu",
        MaxU = 16 => "maxu",
    }
);

impl AluOp {
    /// Apply the operation to two words at width `w`.
    pub fn apply(self, a: Word, b: Word, w: Width) -> Word {
        match self {
            AluOp::Add => a.wrapping_add(b, w),
            AluOp::Sub => a.wrapping_sub(b, w),
            AluOp::And => a.and(b),
            AluOp::Or => a.or(b),
            AluOp::Xor => a.xor(b),
            AluOp::Nor => a.nor(b, w),
            AluOp::Sll => a.shl(b, w),
            AluOp::Srl => a.shr(b, w),
            AluOp::Sra => a.sar(b, w),
            AluOp::Mul => a.mul_lo(b, w),
            AluOp::Mulh => a.mul_hi(b, w),
            AluOp::Div => a.div_signed(b, w),
            AluOp::Rem => a.rem_signed(b, w),
            AluOp::Min => a.min_signed(b, w),
            AluOp::Max => a.max_signed(b, w),
            AluOp::MinU => a.min_unsigned(b),
            AluOp::MaxU => a.max_unsigned(b),
        }
    }

    /// True for operations executed by the (possibly sequential) multiplier.
    pub const fn uses_multiplier(self) -> bool {
        matches!(self, AluOp::Mul | AluOp::Mulh)
    }

    /// True for operations executed by the sequential divider.
    pub const fn uses_divider(self) -> bool {
        matches!(self, AluOp::Div | AluOp::Rem)
    }
}

op_enum!(
    /// Comparison operations. Comparisons read general-purpose registers and
    /// write a flag register ("logical results from comparisons ... become a
    /// first-class data type").
    CmpOp {
        Eq = 0 => "eq",
        Ne = 1 => "ne",
        Lt = 2 => "lt",
        Le = 3 => "le",
        LtU = 4 => "ltu",
        LeU = 5 => "leu",
    }
);

impl CmpOp {
    /// Apply the comparison at width `w`.
    pub fn apply(self, a: Word, b: Word, w: Width) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a.to_i64(w) < b.to_i64(w),
            CmpOp::Le => a.to_i64(w) <= b.to_i64(w),
            CmpOp::LtU => a.to_u32() < b.to_u32(),
            CmpOp::LeU => a.to_u32() <= b.to_u32(),
        }
    }
}

op_enum!(
    /// Flag-register logic operations ("logic operations are supported for
    /// both integers (bitwise logic) and flags").
    FlagOp {
        And = 0 => "fand",
        Or = 1 => "for",
        Xor = 2 => "fxor",
        AndNot = 3 => "fandn",
        Not = 4 => "fnot",
        Mov = 5 => "fmov",
        Set = 6 => "fset",
        Clr = 7 => "fclr",
    }
);

impl FlagOp {
    /// Apply the flag operation. Unary/nullary operations ignore the unused
    /// inputs.
    pub fn apply(self, a: bool, b: bool) -> bool {
        match self {
            FlagOp::And => a && b,
            FlagOp::Or => a || b,
            FlagOp::Xor => a ^ b,
            FlagOp::AndNot => a && !b,
            FlagOp::Not => !a,
            FlagOp::Mov => a,
            FlagOp::Set => true,
            FlagOp::Clr => false,
        }
    }

    /// Number of flag source operands the operation reads.
    pub const fn arity(self) -> usize {
        match self {
            FlagOp::And | FlagOp::Or | FlagOp::Xor | FlagOp::AndNot => 2,
            FlagOp::Not | FlagOp::Mov => 1,
            FlagOp::Set | FlagOp::Clr => 0,
        }
    }

    /// Apply the flag operation to 64 lanes at once, one flag per bit —
    /// the word-parallel form used by packed flag bitplanes (bit `i` of
    /// the result is `apply(bit i of a, bit i of b)`).
    pub const fn apply_word(self, a: u64, b: u64) -> u64 {
        match self {
            FlagOp::And => a & b,
            FlagOp::Or => a | b,
            FlagOp::Xor => a ^ b,
            FlagOp::AndNot => a & !b,
            FlagOp::Not => !a,
            FlagOp::Mov => a,
            FlagOp::Set => !0,
            FlagOp::Clr => 0,
        }
    }
}

op_enum!(
    /// Reduction operations over parallel general-purpose values, computed
    /// by the pipelined reduction network.
    ReduceOp {
        And = 0 => "rand",
        Or = 1 => "ror",
        Max = 2 => "rmax",
        Min = 3 => "rmin",
        MaxU = 4 => "rmaxu",
        MinU = 5 => "rminu",
        Sum = 6 => "rsum",
    }
);

impl ReduceOp {
    /// Identity element of the reduction at width `w` (what an inactive PE
    /// contributes to the tree).
    pub fn identity(self, w: Width) -> Word {
        match self {
            ReduceOp::And => Word(w.mask()),
            ReduceOp::Or => Word::ZERO,
            ReduceOp::Max => Word::from_i64(w.smin(), w),
            ReduceOp::Min => Word::from_i64(w.smax(), w),
            ReduceOp::MaxU => Word::ZERO,
            ReduceOp::MinU => Word(w.mask()),
            ReduceOp::Sum => Word::ZERO,
        }
    }

    /// Combine two values at a tree node. `Sum` saturates, per the paper.
    pub fn combine(self, a: Word, b: Word, w: Width) -> Word {
        match self {
            ReduceOp::And => a.and(b),
            ReduceOp::Or => a.or(b),
            ReduceOp::Max => a.max_signed(b, w),
            ReduceOp::Min => a.min_signed(b, w),
            ReduceOp::MaxU => a.max_unsigned(b),
            ReduceOp::MinU => a.min_unsigned(b),
            ReduceOp::Sum => a.saturating_add_signed(b, w),
        }
    }
}

op_enum!(
    /// Reductions over parallel *flag* values: responder detection. `Any` is
    /// the ASC "some/none responders" test; `All` is its dual.
    FlagReduceOp {
        Any = 0 => "rany",
        All = 1 => "rall",
    }
);

impl FlagReduceOp {
    /// Identity element (what an inactive PE contributes).
    pub const fn identity(self) -> bool {
        match self {
            FlagReduceOp::Any => false,
            FlagReduceOp::All => true,
        }
    }

    /// Combine two flag values at a tree node.
    pub fn combine(self, a: bool, b: bool) -> bool {
        match self {
            FlagReduceOp::Any => a || b,
            FlagReduceOp::All => a && b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_code_round_trip() {
        for &op in AluOp::ALL {
            assert_eq!(AluOp::from_code(op.code()), Some(op));
        }
        assert_eq!(AluOp::from_code(17), None);
        assert_eq!(AluOp::ALL.len(), 17);
    }

    #[test]
    fn cmp_semantics_signedness() {
        let w = Width::W8;
        let neg = Word::from_i64(-1, w);
        let one = Word::from_i64(1, w);
        assert!(CmpOp::Lt.apply(neg, one, w));
        assert!(!CmpOp::LtU.apply(neg, one, w)); // 0xff > 1 unsigned
        assert!(CmpOp::Le.apply(one, one, w));
        assert!(CmpOp::Ne.apply(neg, one, w));
    }

    #[test]
    fn flag_op_truth_tables() {
        assert!(FlagOp::And.apply(true, true));
        assert!(!FlagOp::And.apply(true, false));
        assert!(FlagOp::Or.apply(false, true));
        assert!(FlagOp::Xor.apply(true, false));
        assert!(!FlagOp::Xor.apply(true, true));
        assert!(FlagOp::AndNot.apply(true, false));
        assert!(!FlagOp::AndNot.apply(true, true));
        assert!(FlagOp::Not.apply(false, false));
        assert!(FlagOp::Set.apply(false, false));
        assert!(!FlagOp::Clr.apply(true, true));
        assert_eq!(FlagOp::Set.arity(), 0);
        assert_eq!(FlagOp::Not.arity(), 1);
        assert_eq!(FlagOp::Xor.arity(), 2);
    }

    #[test]
    fn flag_op_word_form_matches_boolean_form() {
        // every (op, a-bit, b-bit) combination agrees with the scalar form
        let a = 0b0011u64;
        let b = 0b0101u64;
        for &op in FlagOp::ALL {
            let word = op.apply_word(a, b);
            for lane in 0..4 {
                let expect = op.apply(a >> lane & 1 == 1, b >> lane & 1 == 1);
                assert_eq!(word >> lane & 1 == 1, expect, "{op:?} lane {lane}");
            }
            // lanes far above the inputs' set bits behave like (false, false)
            assert_eq!(word >> 63 & 1 == 1, op.apply(false, false), "{op:?} lane 63");
        }
    }

    #[test]
    fn reduce_identities() {
        let w = Width::W8;
        for &op in ReduceOp::ALL {
            let id = op.identity(w);
            for v in [0u32, 1, 0x7f, 0x80, 0xff] {
                let v = Word::new(v, w);
                assert_eq!(op.combine(id, v, w), v, "{op} identity");
                assert_eq!(op.combine(v, id, w), v, "{op} identity (comm)");
            }
        }
    }

    #[test]
    fn sum_reduction_saturates() {
        let w = Width::W8;
        let a = Word::from_i64(100, w);
        assert_eq!(ReduceOp::Sum.combine(a, a, w).to_i64(w), 127);
        let b = Word::from_i64(-100, w);
        assert_eq!(ReduceOp::Sum.combine(b, b, w).to_i64(w), -128);
    }

    #[test]
    fn flag_reduce() {
        assert!(FlagReduceOp::Any.combine(false, true));
        assert!(!FlagReduceOp::Any.combine(false, false));
        assert!(FlagReduceOp::All.combine(true, true));
        assert!(!FlagReduceOp::All.combine(true, false));
        assert!(!FlagReduceOp::Any.identity());
        assert!(FlagReduceOp::All.identity());
    }
}
