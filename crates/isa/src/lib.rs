#![warn(missing_docs)]

//! # asc-isa — Instruction Set Architecture for the MTASC processor
//!
//! This crate defines the instruction set of the *Multithreaded Associative
//! SIMD Processor* (Schaffer & Walker, IPDPS/MPP 2007): a RISC load/store
//! architecture similar to MIPS, extended with
//!
//! * **parallel instructions** that execute on the PE array, operating on a
//!   separate parallel register file and parallel (local) memory space,
//!   optionally taking one *scalar* operand that is broadcast to the array;
//! * **flag registers** — 1-bit logical values produced by comparisons are a
//!   first-class data type with their own register files and instructions,
//!   on both the scalar and the parallel side;
//! * **reduction instructions** that combine parallel values into a scalar
//!   (bitwise AND/OR, max/min, saturating sum, responder count) plus the
//!   *multiple response resolver* which produces a parallel result;
//! * **multithreading instructions** to allocate and release hardware
//!   threads and to communicate data between threads.
//!
//! The paper names these instruction classes but does not publish an opcode
//! map; the concrete 32-bit encoding here is ours (see `DESIGN.md`). All
//! instructions are fixed 32-bit words with an 8-bit major opcode.
//!
//! The main types are [`Instr`] (a fully decoded instruction), the
//! [`encode`]/[`decode`] pair, and the operand introspection API
//! ([`Instr::reads`], [`Instr::writes`], [`Instr::class`]) used by the
//! simulator's scoreboard for hazard detection.

pub mod gen;
pub mod instr;
pub mod ops;
pub mod reg;
pub mod word;

mod decode;
mod encode;
mod opcode;

pub use decode::{decode, DecodeError};
pub use encode::encode;
pub use instr::{Instr, InstrClass, Operand, OperandList, RegClass};
pub use ops::{AluOp, CmpOp, FlagOp, FlagReduceOp, ReduceOp};
pub use reg::{Mask, PFlag, PReg, SFlag, SReg};
pub use word::{Width, Word};

/// Number of general-purpose registers per thread, on both the scalar and
/// the parallel side (register fields are 4 bits wide).
pub const NUM_GPRS: usize = 16;

/// Number of flag registers per thread, on both the scalar and the parallel
/// side (flag fields are 3 bits wide).
pub const NUM_FLAGS: usize = 8;

/// Register 0 reads as zero and ignores writes, like MIPS `$zero`, on both
/// register files.
pub const ZERO_REG: u8 = 0;

#[cfg(test)]
mod proptests;
