//! Major-opcode assignments. Every instruction word is 32 bits with the
//! major opcode in bits `[31:24]`. Families with a sub-operation (ALU,
//! compare, flag-logic, reduce) occupy a contiguous opcode range starting at
//! the family base, offset by the operation code.

/// No operation.
pub const NOP: u8 = 0x00;
/// Halt the machine.
pub const HALT: u8 = 0x01;

/// Scalar ALU register-register family base (`+ AluOp::code()`).
pub const SALU: u8 = 0x10;
/// Scalar ALU register-immediate family base.
pub const SALU_IMM: u8 = 0x30;
/// Scalar compare family base (`+ CmpOp::code()`).
pub const SCMP: u8 = 0x50;
/// Scalar compare-immediate family base.
pub const SCMP_IMM: u8 = 0x58;
/// Scalar flag-logic family base (`+ FlagOp::code()`).
pub const SFLAG: u8 = 0x60;

/// Scalar load word.
pub const LW: u8 = 0x70;
/// Scalar store word.
pub const SW: u8 = 0x71;
/// Load immediate.
pub const LI: u8 = 0x72;
/// Load upper immediate.
pub const LUI: u8 = 0x73;
/// Branch if flag true.
pub const BT: u8 = 0x74;
/// Branch if flag false.
pub const BF: u8 = 0x75;
/// Jump.
pub const J: u8 = 0x76;
/// Jump and link.
pub const JAL: u8 = 0x77;
/// Jump register.
pub const JR: u8 = 0x78;

/// Allocate a hardware thread.
pub const TSPAWN: u8 = 0x79;
/// Release the executing hardware thread.
pub const TEXIT: u8 = 0x7a;
/// Wait for another thread to exit.
pub const TJOIN: u8 = 0x7b;
/// Inter-thread register read.
pub const TGET: u8 = 0x7c;
/// Inter-thread register write.
pub const TPUT: u8 = 0x7d;
/// Read the executing thread id.
pub const TID: u8 = 0x7e;

/// Parallel ALU register-register family base.
pub const PALU: u8 = 0x80;
/// Parallel compare family base.
pub const PCMP: u8 = 0x91;
/// Parallel flag-logic family base.
pub const PFLAG: u8 = 0x97;
/// Parallel ALU with broadcast scalar operand, family base.
pub const PALU_S: u8 = 0xa0;
/// Parallel compare against broadcast scalar, family base.
pub const PCMP_S: u8 = 0xb1;
/// Parallel ALU register-immediate family base.
pub const PALU_IMM: u8 = 0xc0;
/// Parallel compare-immediate family base.
pub const PCMP_IMM: u8 = 0xd1;

/// Parallel load from PE local memory.
pub const PLW: u8 = 0xe0;
/// Parallel store to PE local memory.
pub const PSW: u8 = 0xe1;
/// Write PE index.
pub const PIDX: u8 = 0xe2;
/// Broadcast scalar into parallel register.
pub const PMOVS: u8 = 0xe3;
/// Inter-PE shift through the reconfigurable PE interconnection network.
pub const PSHIFT: u8 = 0xe4;

/// Reduction family base (`+ ReduceOp::code()`).
pub const REDUCE: u8 = 0xf0;
/// Exact responder count.
pub const RCOUNT: u8 = 0xf7;
/// Flag reduction family base (`+ FlagReduceOp::code()`): any/all.
pub const RFLAG: u8 = 0xf8;
/// Multiple response resolver (first responder; parallel result).
pub const PFIRST: u8 = 0xfa;
/// Pick-one-and-read.
pub const RGET: u8 = 0xfb;
