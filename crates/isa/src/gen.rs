//! Random generation of *valid* instructions, used by property tests,
//! cross-crate differential tests (emulator vs. timing simulator), and
//! fuzz-style benchmark workloads.

use rand::Rng;

use crate::instr::Instr;
use crate::ops::{AluOp, CmpOp, FlagOp, FlagReduceOp, ReduceOp};
use crate::reg::{Mask, PFlag, PReg, SFlag, SReg};

fn sreg<R: Rng + ?Sized>(rng: &mut R) -> SReg {
    SReg::from_index(rng.random_range(0..16))
}
fn preg<R: Rng + ?Sized>(rng: &mut R) -> PReg {
    PReg::from_index(rng.random_range(0..16))
}
fn sflag<R: Rng + ?Sized>(rng: &mut R) -> SFlag {
    SFlag::from_index(rng.random_range(0..8))
}
fn pflag<R: Rng + ?Sized>(rng: &mut R) -> PFlag {
    PFlag::from_index(rng.random_range(0..8))
}
fn mask<R: Rng + ?Sized>(rng: &mut R) -> Mask {
    if rng.random_bool(0.5) {
        Mask::All
    } else {
        Mask::Flag(pflag(rng))
    }
}
fn alu_op<R: Rng + ?Sized>(rng: &mut R) -> AluOp {
    AluOp::ALL[rng.random_range(0..AluOp::ALL.len())]
}
fn cmp_op<R: Rng + ?Sized>(rng: &mut R) -> CmpOp {
    CmpOp::ALL[rng.random_range(0..CmpOp::ALL.len())]
}
fn flag_op<R: Rng + ?Sized>(rng: &mut R) -> FlagOp {
    FlagOp::ALL[rng.random_range(0..FlagOp::ALL.len())]
}
fn reduce_op<R: Rng + ?Sized>(rng: &mut R) -> ReduceOp {
    ReduceOp::ALL[rng.random_range(0..ReduceOp::ALL.len())]
}

/// Generate a uniformly random valid instruction, drawing from every
/// instruction form (including control flow and thread management).
pub fn random_instr<R: Rng + ?Sized>(rng: &mut R) -> Instr {
    match rng.random_range(0..33u32) {
        0 => Instr::Nop,
        1 => Instr::Halt,
        2 => Instr::SAlu { op: alu_op(rng), rd: sreg(rng), ra: sreg(rng), rb: sreg(rng) },
        3 => Instr::SAluImm { op: alu_op(rng), rd: sreg(rng), ra: sreg(rng), imm: rng.random() },
        4 => Instr::SCmp { op: cmp_op(rng), fd: sflag(rng), ra: sreg(rng), rb: sreg(rng) },
        5 => Instr::SCmpImm { op: cmp_op(rng), fd: sflag(rng), ra: sreg(rng), imm: rng.random() },
        6 => {
            let op = flag_op(rng);
            Instr::SFlagOp {
                op,
                fd: sflag(rng),
                fa: if op.arity() >= 1 { sflag(rng) } else { SFlag::R0 },
                fb: if op.arity() >= 2 { sflag(rng) } else { SFlag::R0 },
            }
        }
        7 => Instr::Lw { rd: sreg(rng), base: sreg(rng), off: rng.random() },
        8 => Instr::Sw { rs: sreg(rng), base: sreg(rng), off: rng.random() },
        9 => Instr::Li { rd: sreg(rng), imm: rng.random() },
        10 => Instr::Lui { rd: sreg(rng), imm: rng.random() },
        11 => Instr::Bt { fa: sflag(rng), off: rng.random() },
        12 => Instr::Bf { fa: sflag(rng), off: rng.random() },
        13 => Instr::J { target: rng.random_range(0..0x0100_0000) },
        14 => Instr::Jal { rd: sreg(rng), target: rng.random_range(0..0x0010_0000) },
        15 => Instr::Jr { ra: sreg(rng) },
        16 => Instr::TSpawn { rd: sreg(rng), ra: sreg(rng) },
        17 => Instr::TExit,
        18 => Instr::TJoin { ra: sreg(rng) },
        19 => Instr::TGet { rd: sreg(rng), ta: sreg(rng), src: sreg(rng) },
        20 => Instr::TPut { ta: sreg(rng), dst: sreg(rng), rb: sreg(rng) },
        21 => Instr::TId { rd: sreg(rng) },
        22 => Instr::PAlu {
            op: alu_op(rng),
            pd: preg(rng),
            pa: preg(rng),
            pb: preg(rng),
            mask: mask(rng),
        },
        23 => Instr::PAluS {
            op: alu_op(rng),
            pd: preg(rng),
            pa: preg(rng),
            sb: sreg(rng),
            mask: mask(rng),
        },
        24 => Instr::PAluImm {
            op: alu_op(rng),
            pd: preg(rng),
            pa: preg(rng),
            imm: rng.random(),
            mask: mask(rng),
        },
        25 => match rng.random_range(0..3u32) {
            0 => Instr::PCmp {
                op: cmp_op(rng),
                fd: pflag(rng),
                pa: preg(rng),
                pb: preg(rng),
                mask: mask(rng),
            },
            1 => Instr::PCmpS {
                op: cmp_op(rng),
                fd: pflag(rng),
                pa: preg(rng),
                sb: sreg(rng),
                mask: mask(rng),
            },
            _ => Instr::PCmpImm {
                op: cmp_op(rng),
                fd: pflag(rng),
                pa: preg(rng),
                imm: rng.random(),
                mask: mask(rng),
            },
        },
        26 => {
            let op = flag_op(rng);
            Instr::PFlagOp {
                op,
                fd: pflag(rng),
                fa: if op.arity() >= 1 { pflag(rng) } else { PFlag::R0 },
                fb: if op.arity() >= 2 { pflag(rng) } else { PFlag::R0 },
                mask: mask(rng),
            }
        }
        27 => {
            if rng.random_bool(0.5) {
                Instr::Plw { pd: preg(rng), base: preg(rng), off: rng.random(), mask: mask(rng) }
            } else {
                Instr::Psw { ps: preg(rng), base: preg(rng), off: rng.random(), mask: mask(rng) }
            }
        }
        28 => {
            if rng.random_bool(0.5) {
                Instr::Pidx { pd: preg(rng), mask: mask(rng) }
            } else {
                Instr::PShift { pd: preg(rng), pa: preg(rng), dist: rng.random(), mask: mask(rng) }
            }
        }
        29 => Instr::PMovS { pd: preg(rng), sa: sreg(rng), mask: mask(rng) },
        30 => Instr::Reduce { op: reduce_op(rng), sd: sreg(rng), pa: preg(rng), mask: mask(rng) },
        31 => match rng.random_range(0..3u32) {
            0 => Instr::RCount { sd: sreg(rng), fa: pflag(rng), mask: mask(rng) },
            1 => Instr::RFlag {
                op: if rng.random_bool(0.5) { FlagReduceOp::Any } else { FlagReduceOp::All },
                fd: sflag(rng),
                fa: pflag(rng),
                mask: mask(rng),
            },
            _ => Instr::PFirst { fd: pflag(rng), fa: pflag(rng), mask: mask(rng) },
        },
        _ => Instr::RGet { sd: sreg(rng), pa: preg(rng), fa: pflag(rng), mask: mask(rng) },
    }
}

/// Generate a random *straight-line, thread-local* instruction: no control
/// flow, no halt, no thread management. Useful for differential tests where
/// the program must terminate and per-thread state must stay independent.
pub fn random_straightline_instr<R: Rng + ?Sized>(rng: &mut R) -> Instr {
    loop {
        let i = random_instr(rng);
        let excluded = i.is_branch()
            || matches!(
                i,
                Instr::Halt
                    | Instr::TSpawn { .. }
                    | Instr::TExit
                    | Instr::TJoin { .. }
                    | Instr::TGet { .. }
                    | Instr::TPut { .. }
            );
        if !excluded {
            return i;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn straightline_excludes_control_flow() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let i = random_straightline_instr(&mut rng);
            assert!(!i.is_branch());
            assert!(!matches!(i, Instr::Halt | Instr::TExit));
        }
    }

    #[test]
    fn generator_covers_all_classes() {
        use crate::instr::InstrClass;
        let mut rng = StdRng::seed_from_u64(8);
        let mut seen = [false; 3];
        for _ in 0..500 {
            match random_instr(&mut rng).class() {
                InstrClass::Scalar => seen[0] = true,
                InstrClass::Parallel => seen[1] = true,
                InstrClass::Reduction => seen[2] = true,
            }
        }
        assert_eq!(seen, [true; 3]);
    }
}
