//! Property tests for the ISA: encode/decode bijectivity and operand
//! introspection invariants.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::gen::random_instr;
use crate::instr::InstrClass;
use crate::{decode, encode};

proptest! {
    /// decode(encode(i)) == i for every valid instruction.
    #[test]
    fn encode_decode_round_trip(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let i = random_instr(&mut rng);
            let w = encode(&i);
            prop_assert_eq!(decode(w), Ok(i), "word {:#010x}", w);
        }
    }

    /// Any word that decodes must re-encode to the identical word (the
    /// encoding has no don't-care bits).
    #[test]
    fn decode_encode_fixpoint(word in any::<u32>()) {
        if let Ok(i) = decode(word) {
            prop_assert_eq!(encode(&i), word);
        }
    }

    /// Writes never alias the hardwired zero registers; reads and writes
    /// always reference in-range register indices.
    #[test]
    fn operand_invariants(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let i = random_instr(&mut rng);
            for o in i.reads().into_iter().chain(i.writes()) {
                prop_assert!(!o.is_zero_gpr() || i.writes().iter().all(|w| *w != o));
                let limit = match o.class {
                    crate::RegClass::SGpr | crate::RegClass::PGpr => 16,
                    crate::RegClass::SFlag | crate::RegClass::PFlag => 8,
                };
                prop_assert!((o.index as usize) < limit);
            }
        }
    }

    /// Mask reads are reported: any masked instruction lists its mask flag
    /// among its reads.
    #[test]
    fn mask_is_a_read(seed in any::<u64>()) {
        use crate::reg::Mask;
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let i = random_instr(&mut rng);
            if let Some(Mask::Flag(f)) = i.mask() {
                prop_assert!(i.reads().contains(&crate::Operand::pf(f)), "{:?}", i);
            }
        }
    }

    /// Reduction-class instructions never write parallel GPRs, and parallel
    /// instructions never write scalar registers (the pipeline paths of
    /// Figure 1 have no such datapath).
    #[test]
    fn class_write_discipline(seed in any::<u64>()) {
        use crate::RegClass;
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let i = random_instr(&mut rng);
            match i.class() {
                InstrClass::Parallel => {
                    for w in i.writes() {
                        prop_assert!(
                            matches!(w.class, RegClass::PGpr | RegClass::PFlag),
                            "parallel instruction {:?} writes {:?}", i, w
                        );
                    }
                }
                InstrClass::Reduction => {
                    for w in i.writes() {
                        // the MRR is the one reduction with a parallel
                        // (flag) result
                        prop_assert!(
                            !matches!(w.class, RegClass::PGpr),
                            "reduction {:?} writes a parallel GPR", i
                        );
                    }
                }
                InstrClass::Scalar => {
                    for w in i.writes() {
                        prop_assert!(
                            matches!(w.class, RegClass::SGpr | RegClass::SFlag),
                            "scalar instruction {:?} writes {:?}", i, w
                        );
                    }
                }
            }
        }
    }
}
