//! Instruction encoding: [`Instr`] → 32-bit word.
//!
//! Field layout below the major opcode (bits `[23:0]`): register fields `A`
//! = `[23:20]`, `B` = `[19:16]`, `C` = `[15:12]` (flag registers use the
//! same 4-bit fields with the top bit clear); scalar immediates occupy
//! `[15:0]`; parallel immediates occupy `[15:8]`; the activity mask is
//! always `[3:0]`; jump targets occupy `[23:0]` (`j`) or `[19:0]` (`jal`).
//! All unused bits encode as zero, and [`crate::decode`] rejects nonzero
//! reserved bits, making encode/decode a bijection on valid words.

use crate::instr::Instr;
use crate::opcode as op;
use crate::reg::{Mask, PFlag, PReg, SFlag, SReg};

fn fa(r: u8) -> u32 {
    (r as u32) << 20
}
fn fb(r: u8) -> u32 {
    (r as u32) << 16
}
fn fc(r: u8) -> u32 {
    (r as u32) << 12
}
fn imm16(i: i16) -> u32 {
    (i as u16) as u32
}
fn imm8(i: i8) -> u32 {
    ((i as u8) as u32) << 8
}

fn word(opcode: u8, rest: u32) -> u32 {
    debug_assert_eq!(rest >> 24, 0, "fields overflow into opcode byte");
    ((opcode as u32) << 24) | rest
}

fn s(r: SReg) -> u8 {
    r.raw()
}
fn p(r: PReg) -> u8 {
    r.raw()
}
fn sf(f: SFlag) -> u8 {
    f.raw()
}
fn pf(f: PFlag) -> u8 {
    f.raw()
}
fn m(mask: Mask) -> u32 {
    mask.to_bits()
}

/// Encode an instruction into its 32-bit machine word.
pub fn encode(i: &Instr) -> u32 {
    use Instr::*;
    match *i {
        Nop => word(op::NOP, 0),
        Halt => word(op::HALT, 0),
        SAlu { op: o, rd, ra, rb } => word(op::SALU + o.code(), fa(s(rd)) | fb(s(ra)) | fc(s(rb))),
        SAluImm { op: o, rd, ra, imm } => {
            word(op::SALU_IMM + o.code(), fa(s(rd)) | fb(s(ra)) | imm16(imm))
        }
        SCmp { op: o, fd, ra, rb } => word(op::SCMP + o.code(), fa(sf(fd)) | fb(s(ra)) | fc(s(rb))),
        SCmpImm { op: o, fd, ra, imm } => {
            word(op::SCMP_IMM + o.code(), fa(sf(fd)) | fb(s(ra)) | imm16(imm))
        }
        SFlagOp { op: o, fd, fa: a, fb: b } => {
            word(op::SFLAG + o.code(), fa(sf(fd)) | fb(sf(a)) | fc(sf(b)))
        }
        Lw { rd, base, off } => word(op::LW, fa(s(rd)) | fb(s(base)) | imm16(off)),
        Sw { rs, base, off } => word(op::SW, fa(s(rs)) | fb(s(base)) | imm16(off)),
        Li { rd, imm } => word(op::LI, fa(s(rd)) | imm16(imm)),
        Lui { rd, imm } => word(op::LUI, fa(s(rd)) | imm as u32),
        Bt { fa: f, off } => word(op::BT, fa(sf(f)) | imm16(off)),
        Bf { fa: f, off } => word(op::BF, fa(sf(f)) | imm16(off)),
        J { target } => word(op::J, target & 0x00ff_ffff),
        Jal { rd, target } => word(op::JAL, fa(s(rd)) | (target & 0x000f_ffff)),
        Jr { ra } => word(op::JR, fa(s(ra))),
        TSpawn { rd, ra } => word(op::TSPAWN, fa(s(rd)) | fb(s(ra))),
        TExit => word(op::TEXIT, 0),
        TJoin { ra } => word(op::TJOIN, fa(s(ra))),
        TGet { rd, ta, src } => word(op::TGET, fa(s(rd)) | fb(s(ta)) | fc(s(src))),
        TPut { ta, dst, rb } => word(op::TPUT, fa(s(ta)) | fb(s(dst)) | fc(s(rb))),
        TId { rd } => word(op::TID, fa(s(rd))),
        PAlu { op: o, pd, pa, pb, mask } => {
            word(op::PALU + o.code(), fa(p(pd)) | fb(p(pa)) | fc(p(pb)) | m(mask))
        }
        PAluS { op: o, pd, pa, sb, mask } => {
            word(op::PALU_S + o.code(), fa(p(pd)) | fb(p(pa)) | fc(s(sb)) | m(mask))
        }
        PAluImm { op: o, pd, pa, imm, mask } => {
            word(op::PALU_IMM + o.code(), fa(p(pd)) | fb(p(pa)) | imm8(imm) | m(mask))
        }
        PCmp { op: o, fd, pa, pb, mask } => {
            word(op::PCMP + o.code(), fa(pf(fd)) | fb(p(pa)) | fc(p(pb)) | m(mask))
        }
        PCmpS { op: o, fd, pa, sb, mask } => {
            word(op::PCMP_S + o.code(), fa(pf(fd)) | fb(p(pa)) | fc(s(sb)) | m(mask))
        }
        PCmpImm { op: o, fd, pa, imm, mask } => {
            word(op::PCMP_IMM + o.code(), fa(pf(fd)) | fb(p(pa)) | imm8(imm) | m(mask))
        }
        PFlagOp { op: o, fd, fa: a, fb: b, mask } => {
            word(op::PFLAG + o.code(), fa(pf(fd)) | fb(pf(a)) | fc(pf(b)) | m(mask))
        }
        Plw { pd, base, off, mask } => word(op::PLW, fa(p(pd)) | fb(p(base)) | imm8(off) | m(mask)),
        Psw { ps, base, off, mask } => word(op::PSW, fa(p(ps)) | fb(p(base)) | imm8(off) | m(mask)),
        Pidx { pd, mask } => word(op::PIDX, fa(p(pd)) | m(mask)),
        PMovS { pd, sa, mask } => word(op::PMOVS, fa(p(pd)) | fb(s(sa)) | m(mask)),
        PShift { pd, pa, dist, mask } => {
            word(op::PSHIFT, fa(p(pd)) | fb(p(pa)) | imm8(dist) | m(mask))
        }
        Reduce { op: o, sd, pa, mask } => {
            word(op::REDUCE + o.code(), fa(s(sd)) | fb(p(pa)) | m(mask))
        }
        RCount { sd, fa: f, mask } => word(op::RCOUNT, fa(s(sd)) | fb(pf(f)) | m(mask)),
        RFlag { op: o, fd, fa: f, mask } => {
            word(op::RFLAG + o.code(), fa(sf(fd)) | fb(pf(f)) | m(mask))
        }
        PFirst { fd, fa: f, mask } => word(op::PFIRST, fa(pf(fd)) | fb(pf(f)) | m(mask)),
        RGet { sd, pa, fa: f, mask } => word(op::RGET, fa(s(sd)) | fb(p(pa)) | fc(pf(f)) | m(mask)),
    }
}
