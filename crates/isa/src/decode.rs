//! Instruction decoding: 32-bit word → [`Instr`].
//!
//! Decoding is *strict*: unknown opcodes, out-of-range flag fields, reserved
//! mask encodings, and nonzero reserved bits are all rejected. Strictness
//! makes `decode(encode(i)) == i` and `encode(decode(w)) == w` total on
//! their respective domains, which the property tests rely on, and gives the
//! simulator a well-defined illegal-instruction trap.

use std::fmt;

use crate::instr::Instr;
use crate::opcode as op;
use crate::ops::{AluOp, CmpOp, FlagOp, FlagReduceOp, ReduceOp};
use crate::reg::{Mask, PFlag, PReg, SFlag, SReg};

/// Why a 32-bit word failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The major opcode byte is not assigned.
    InvalidOpcode(u8),
    /// A flag-register field had its top bit set (only 8 flag registers
    /// exist).
    InvalidFlagField {
        /// The offending instruction word.
        word: u32,
        /// The bad 4-bit field value.
        field: u32,
    },
    /// The 4-bit mask field used a reserved encoding (`0001`..`0111`).
    InvalidMask {
        /// The offending instruction word.
        word: u32,
        /// The reserved mask bits.
        bits: u32,
    },
    /// Bits that must be zero were set.
    ReservedBits {
        /// The offending instruction word.
        word: u32,
        /// The nonzero reserved bits.
        reserved: u32,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::InvalidOpcode(o) => write!(f, "invalid opcode {o:#04x}"),
            DecodeError::InvalidFlagField { word, field } => {
                write!(f, "invalid flag register field {field} in word {word:#010x}")
            }
            DecodeError::InvalidMask { word, bits } => {
                write!(f, "reserved mask encoding {bits:#06b} in word {word:#010x}")
            }
            DecodeError::ReservedBits { word, reserved } => {
                write!(f, "reserved bits set ({reserved:#010x}) in word {word:#010x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

struct Fields {
    word: u32,
}

impl Fields {
    fn a(&self) -> u8 {
        ((self.word >> 20) & 0xf) as u8
    }
    fn b(&self) -> u8 {
        ((self.word >> 16) & 0xf) as u8
    }
    fn c(&self) -> u8 {
        ((self.word >> 12) & 0xf) as u8
    }
    fn sa(&self) -> SReg {
        SReg::from_index(self.a())
    }
    fn sb(&self) -> SReg {
        SReg::from_index(self.b())
    }
    fn sc(&self) -> SReg {
        SReg::from_index(self.c())
    }
    fn pa(&self) -> PReg {
        PReg::from_index(self.a())
    }
    fn pb(&self) -> PReg {
        PReg::from_index(self.b())
    }
    fn pc(&self) -> PReg {
        PReg::from_index(self.c())
    }
    fn flag(&self, field: u8) -> Result<u8, DecodeError> {
        if field < 8 {
            Ok(field)
        } else {
            Err(DecodeError::InvalidFlagField { word: self.word, field: field as u32 })
        }
    }
    fn sfa(&self) -> Result<SFlag, DecodeError> {
        self.flag(self.a()).map(SFlag::from_index)
    }
    fn sfb(&self) -> Result<SFlag, DecodeError> {
        self.flag(self.b()).map(SFlag::from_index)
    }
    fn sfc(&self) -> Result<SFlag, DecodeError> {
        self.flag(self.c()).map(SFlag::from_index)
    }
    fn pfa(&self) -> Result<PFlag, DecodeError> {
        self.flag(self.a()).map(PFlag::from_index)
    }
    fn pfb(&self) -> Result<PFlag, DecodeError> {
        self.flag(self.b()).map(PFlag::from_index)
    }
    fn pfc(&self) -> Result<PFlag, DecodeError> {
        self.flag(self.c()).map(PFlag::from_index)
    }
    fn imm16(&self) -> i16 {
        (self.word & 0xffff) as u16 as i16
    }
    fn uimm16(&self) -> u16 {
        (self.word & 0xffff) as u16
    }
    fn imm8(&self) -> i8 {
        ((self.word >> 8) & 0xff) as u8 as i8
    }
    fn mask(&self) -> Result<Mask, DecodeError> {
        let bits = self.word & 0xf;
        Mask::from_bits(bits).ok_or(DecodeError::InvalidMask { word: self.word, bits })
    }
    /// Check that every bit outside `used` (within [23:0]) is zero.
    fn reserved(&self, used: u32) -> Result<(), DecodeError> {
        let reserved = self.word & 0x00ff_ffff & !used;
        if reserved != 0 {
            Err(DecodeError::ReservedBits { word: self.word, reserved })
        } else {
            Ok(())
        }
    }
}

const A: u32 = 0x00f0_0000;
const B: u32 = 0x000f_0000;
const C: u32 = 0x0000_f000;
const IMM16: u32 = 0x0000_ffff;
const IMM8: u32 = 0x0000_ff00;
const MASK: u32 = 0x0000_000f;

/// Decode a 32-bit machine word into an [`Instr`].
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let opc = (word >> 24) as u8;
    let f = Fields { word };
    use Instr::*;

    // Sub-op families first.
    if let Some(o) = in_family(opc, op::SALU, AluOp::from_code) {
        f.reserved(A | B | C)?;
        return Ok(SAlu { op: o, rd: f.sa(), ra: f.sb(), rb: f.sc() });
    }
    if let Some(o) = in_family(opc, op::SALU_IMM, AluOp::from_code) {
        f.reserved(A | B | IMM16)?;
        return Ok(SAluImm { op: o, rd: f.sa(), ra: f.sb(), imm: f.imm16() });
    }
    if let Some(o) = in_family(opc, op::SCMP, CmpOp::from_code) {
        f.reserved(A | B | C)?;
        return Ok(SCmp { op: o, fd: f.sfa()?, ra: f.sb(), rb: f.sc() });
    }
    if let Some(o) = in_family(opc, op::SCMP_IMM, CmpOp::from_code) {
        f.reserved(A | B | IMM16)?;
        return Ok(SCmpImm { op: o, fd: f.sfa()?, ra: f.sb(), imm: f.imm16() });
    }
    if let Some(o) = in_family(opc, op::SFLAG, FlagOp::from_code) {
        f.reserved(A | B | C)?;
        return Ok(SFlagOp { op: o, fd: f.sfa()?, fa: f.sfb()?, fb: f.sfc()? });
    }
    if let Some(o) = in_family(opc, op::PALU, AluOp::from_code) {
        f.reserved(A | B | C | MASK)?;
        return Ok(PAlu { op: o, pd: f.pa(), pa: f.pb(), pb: f.pc(), mask: f.mask()? });
    }
    if let Some(o) = in_family(opc, op::PCMP, CmpOp::from_code) {
        f.reserved(A | B | C | MASK)?;
        return Ok(PCmp { op: o, fd: f.pfa()?, pa: f.pb(), pb: f.pc(), mask: f.mask()? });
    }
    if let Some(o) = in_family(opc, op::PFLAG, FlagOp::from_code) {
        f.reserved(A | B | C | MASK)?;
        return Ok(PFlagOp { op: o, fd: f.pfa()?, fa: f.pfb()?, fb: f.pfc()?, mask: f.mask()? });
    }
    if let Some(o) = in_family(opc, op::PALU_S, AluOp::from_code) {
        f.reserved(A | B | C | MASK)?;
        return Ok(PAluS { op: o, pd: f.pa(), pa: f.pb(), sb: f.sc(), mask: f.mask()? });
    }
    if let Some(o) = in_family(opc, op::PCMP_S, CmpOp::from_code) {
        f.reserved(A | B | C | MASK)?;
        return Ok(PCmpS { op: o, fd: f.pfa()?, pa: f.pb(), sb: f.sc(), mask: f.mask()? });
    }
    if let Some(o) = in_family(opc, op::PALU_IMM, AluOp::from_code) {
        f.reserved(A | B | IMM8 | MASK)?;
        return Ok(PAluImm { op: o, pd: f.pa(), pa: f.pb(), imm: f.imm8(), mask: f.mask()? });
    }
    if let Some(o) = in_family(opc, op::PCMP_IMM, CmpOp::from_code) {
        f.reserved(A | B | IMM8 | MASK)?;
        return Ok(PCmpImm { op: o, fd: f.pfa()?, pa: f.pb(), imm: f.imm8(), mask: f.mask()? });
    }
    if let Some(o) = in_family(opc, op::REDUCE, ReduceOp::from_code) {
        f.reserved(A | B | MASK)?;
        return Ok(Reduce { op: o, sd: f.sa(), pa: f.pb(), mask: f.mask()? });
    }
    if let Some(o) = in_family(opc, op::RFLAG, FlagReduceOp::from_code) {
        f.reserved(A | B | MASK)?;
        return Ok(RFlag { op: o, fd: f.sfa()?, fa: f.pfb()?, mask: f.mask()? });
    }

    match opc {
        op::NOP => {
            f.reserved(0)?;
            Ok(Nop)
        }
        op::HALT => {
            f.reserved(0)?;
            Ok(Halt)
        }
        op::LW => {
            f.reserved(A | B | IMM16)?;
            Ok(Lw { rd: f.sa(), base: f.sb(), off: f.imm16() })
        }
        op::SW => {
            f.reserved(A | B | IMM16)?;
            Ok(Sw { rs: f.sa(), base: f.sb(), off: f.imm16() })
        }
        op::LI => {
            f.reserved(A | IMM16)?;
            Ok(Li { rd: f.sa(), imm: f.imm16() })
        }
        op::LUI => {
            f.reserved(A | IMM16)?;
            Ok(Lui { rd: f.sa(), imm: f.uimm16() })
        }
        op::BT => {
            f.reserved(A | IMM16)?;
            Ok(Bt { fa: f.sfa()?, off: f.imm16() })
        }
        op::BF => {
            f.reserved(A | IMM16)?;
            Ok(Bf { fa: f.sfa()?, off: f.imm16() })
        }
        op::J => Ok(J { target: word & 0x00ff_ffff }),
        op::JAL => {
            f.reserved(A | 0x000f_ffff)?;
            Ok(Jal { rd: f.sa(), target: word & 0x000f_ffff })
        }
        op::JR => {
            f.reserved(A)?;
            Ok(Jr { ra: f.sa() })
        }
        op::TSPAWN => {
            f.reserved(A | B)?;
            Ok(TSpawn { rd: f.sa(), ra: f.sb() })
        }
        op::TEXIT => {
            f.reserved(0)?;
            Ok(TExit)
        }
        op::TJOIN => {
            f.reserved(A)?;
            Ok(TJoin { ra: f.sa() })
        }
        op::TGET => {
            f.reserved(A | B | C)?;
            Ok(TGet { rd: f.sa(), ta: f.sb(), src: f.sc() })
        }
        op::TPUT => {
            f.reserved(A | B | C)?;
            Ok(TPut { ta: f.sa(), dst: f.sb(), rb: f.sc() })
        }
        op::TID => {
            f.reserved(A)?;
            Ok(TId { rd: f.sa() })
        }
        op::PLW => {
            f.reserved(A | B | IMM8 | MASK)?;
            Ok(Plw { pd: f.pa(), base: f.pb(), off: f.imm8(), mask: f.mask()? })
        }
        op::PSW => {
            f.reserved(A | B | IMM8 | MASK)?;
            Ok(Psw { ps: f.pa(), base: f.pb(), off: f.imm8(), mask: f.mask()? })
        }
        op::PIDX => {
            f.reserved(A | MASK)?;
            Ok(Pidx { pd: f.pa(), mask: f.mask()? })
        }
        op::PMOVS => {
            f.reserved(A | B | MASK)?;
            Ok(PMovS { pd: f.pa(), sa: f.sb(), mask: f.mask()? })
        }
        op::PSHIFT => {
            f.reserved(A | B | IMM8 | MASK)?;
            Ok(PShift { pd: f.pa(), pa: f.pb(), dist: f.imm8(), mask: f.mask()? })
        }
        op::RCOUNT => {
            f.reserved(A | B | MASK)?;
            Ok(RCount { sd: f.sa(), fa: f.pfb()?, mask: f.mask()? })
        }
        op::PFIRST => {
            f.reserved(A | B | MASK)?;
            Ok(PFirst { fd: f.pfa()?, fa: f.pfb()?, mask: f.mask()? })
        }
        op::RGET => {
            f.reserved(A | B | C | MASK)?;
            Ok(RGet { sd: f.sa(), pa: f.pb(), fa: f.pfc()?, mask: f.mask()? })
        }
        other => Err(DecodeError::InvalidOpcode(other)),
    }
}

/// If `opc` falls in the family starting at `base`, decode the sub-op.
fn in_family<T>(opc: u8, base: u8, from_code: fn(u8) -> Option<T>) -> Option<T> {
    opc.checked_sub(base).and_then(from_code)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::reg::{Mask, PFlag, PReg, SFlag, SReg};

    #[test]
    fn round_trip_examples() {
        let cases = [
            Instr::Nop,
            Instr::Halt,
            Instr::SAlu {
                op: AluOp::Sub,
                rd: SReg::from_index(1),
                ra: SReg::from_index(2),
                rb: SReg::from_index(3),
            },
            Instr::Li { rd: SReg::from_index(5), imm: -42 },
            Instr::Bt { fa: SFlag::from_index(3), off: -7 },
            Instr::J { target: 0x123456 },
            Instr::PAluS {
                op: AluOp::Add,
                pd: PReg::from_index(4),
                pa: PReg::from_index(5),
                sb: SReg::from_index(6),
                mask: Mask::Flag(PFlag::from_index(2)),
            },
            Instr::Reduce {
                op: ReduceOp::Max,
                sd: SReg::from_index(7),
                pa: PReg::from_index(8),
                mask: Mask::All,
            },
            Instr::RGet {
                sd: SReg::from_index(1),
                pa: PReg::from_index(2),
                fa: PFlag::from_index(3),
                mask: Mask::Flag(PFlag::from_index(4)),
            },
            Instr::TSpawn { rd: SReg::from_index(9), ra: SReg::from_index(10) },
        ];
        for i in cases {
            let w = encode(&i);
            assert_eq!(decode(w), Ok(i), "word {w:#010x}");
        }
    }

    #[test]
    fn rejects_unknown_opcode() {
        assert_eq!(decode(0x02_000000), Err(DecodeError::InvalidOpcode(0x02)));
        assert_eq!(decode(0xff_000000), Err(DecodeError::InvalidOpcode(0xff)));
    }

    #[test]
    fn rejects_reserved_bits() {
        // NOP with garbage in the low bits
        let e = decode(0x00_000001);
        assert!(matches!(e, Err(DecodeError::ReservedBits { .. })), "{e:?}");
        // scalar ALU with nonzero bits below field C
        let base = encode(&Instr::SAlu {
            op: AluOp::Add,
            rd: SReg::from_index(1),
            ra: SReg::from_index(2),
            rb: SReg::from_index(3),
        });
        assert!(matches!(decode(base | 1), Err(DecodeError::ReservedBits { .. })));
    }

    #[test]
    fn rejects_bad_flag_field() {
        // SCMP with fd field = 8 (top bit set)
        let w = ((crate::opcode::SCMP as u32) << 24) | (8 << 20);
        assert!(matches!(decode(w), Err(DecodeError::InvalidFlagField { .. })));
    }

    #[test]
    fn rejects_reserved_mask() {
        // PIDX with mask bits 0b0011
        let w = ((crate::opcode::PIDX as u32) << 24) | 0b0011;
        assert!(matches!(decode(w), Err(DecodeError::InvalidMask { .. })));
    }

    #[test]
    fn family_boundaries() {
        // One past the last AluOp in the scalar family is unassigned (0x21).
        assert_eq!(decode(0x21_000000), Err(DecodeError::InvalidOpcode(0x21)));
        // One past the last ReduceOp (0xf0 + 7 = RCOUNT) is assigned, but
        // 0xfc..0xff are not.
        assert_eq!(decode(0xfc_000000), Err(DecodeError::InvalidOpcode(0xfc)));
    }
}
