//! Hazard visualizer: run any short assembly snippet through the timing
//! simulator and print the stage-by-cycle diagram, Figure-2 style (a
//! stalled instruction repeats its ID stage until issue).
//!
//! ```text
//! cargo run --example hazard_visualizer                    # built-in demos
//! cargo run --example hazard_visualizer -- my_program.asc  # your own code
//! cargo run --example hazard_visualizer -- my_program.asc 64 2
//! #                                         file        PEs  arity
//! ```

use asc::core::pipeline::hazard_diagram;
use asc::core::{Machine, MachineConfig};

fn show(title: &str, source: &str, cfg: MachineConfig) {
    let program = match asc::asm::assemble(source) {
        Ok(p) => p,
        Err(errs) => {
            eprintln!("assembly errors:\n{}", asc::asm::render_errors(&errs));
            std::process::exit(1);
        }
    };
    let mut m = Machine::with_program(cfg, &program).expect("loads");
    m.enable_trace();
    if let Err(e) = m.run(100_000) {
        eprintln!("run failed: {e}");
        std::process::exit(1);
    }
    let t = m.timing();
    println!("=== {title} (p = {}, b = {}, r = {}) ===", cfg.num_pes, t.b, t.r);
    println!("{}", hazard_diagram(m.trace().unwrap(), &t));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(path) = args.first() {
        let source = std::fs::read_to_string(path).expect("readable source file");
        let pes = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16);
        let arity = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
        show(path, &source, MachineConfig::new(pes).with_arity(arity));
        return;
    }

    let cfg = MachineConfig::prototype();
    show(
        "broadcast hazard: EX->B1 forwarding, no stall",
        "sub   s1, s2, s3\npadds p1, p2, s1\nhalt\n",
        cfg,
    );
    show(
        "reduction hazard: dependent scalar stalls b+r",
        "rmax s1, p2\nsub  s3, s1, s1\nhalt\n",
        cfg,
    );
    show(
        "broadcast-reduction hazard: dependent parallel stalls b+r",
        "rmax  s1, p2\npadds p1, p2, s1\nhalt\n",
        cfg,
    );
    show(
        "same hazard on a bigger machine (p = 1024: b = 5, r = 10)",
        "rmax  s1, p2\npadds p1, p2, s1\nhalt\n",
        MachineConfig::new(1024),
    );
    println!("Tip: pass a file of MTASC assembly to visualize your own code.");
}
