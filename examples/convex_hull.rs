//! Convex hull on the associative array: QuickHull where every recursion
//! step is O(1) associative work (broadcast the segment, parallel cross
//! products, masked RMAX, multiple response resolution), with the
//! recursion stack in scalar memory. Renders the point set and its hull
//! as ASCII art and verifies against the host reference.
//!
//! ```text
//! cargo run --example convex_hull
//! ```

use asc::core::MachineConfig;
use asc::kernels::hull;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2007);
    let n = 40;
    let points: Vec<(i64, i64)> = (0..n)
        .map(|_| {
            // cluster with a few outliers, for a visually interesting hull
            if rng.random_bool(0.25) {
                (rng.random_range(-30..=30), rng.random_range(-15..=15))
            } else {
                (rng.random_range(-12..=12), rng.random_range(-6..=6))
            }
        })
        .collect();

    let cfg = MachineConfig::new(64);
    let result = hull::run(cfg, &points).expect("hull runs");
    assert_eq!(result.on_hull, hull::reference(&points), "verified against host QuickHull");

    println!(
        "{} points, {} hull vertices, {} simulated cycles ({} instructions)",
        n, result.count, result.stats.cycles, result.stats.issued
    );
    println!("(o = interior point, # = hull vertex)\n");

    // ASCII render
    let (w, h) = (65i64, 17i64);
    let mut grid = vec![vec![' '; w as usize]; h as usize];
    for (i, &(x, y)) in points.iter().enumerate() {
        let col = (x + 32).clamp(0, w - 1) as usize;
        let row = ((16 - (y + 8)).clamp(0, h - 1)) as usize;
        grid[row][col] = if result.on_hull[i] { '#' } else { 'o' };
    }
    for row in grid {
        println!("{}", row.into_iter().collect::<String>());
    }
    println!(
        "\nEach QuickHull step = 2 broadcasts + 2 multiplies + masked RMAX +\n\
         PFIRST + RGET — constant associative work regardless of point count."
    );
}
