//! Associative database search — the scenario that motivates the ASC
//! model: a table of (key, value) records answers equality queries in a
//! constant number of parallel steps, with responder counting and
//! pick-one resolution in hardware.
//!
//! Also demonstrates the paper's core performance argument by running the
//! same batch of queries on a single hardware thread and on sixteen.
//!
//! ```text
//! cargo run --example associative_search
//! ```

use asc::core::{MachineConfig, StallReason};
use asc::kernels::{micro, search};

fn main() {
    let cfg = MachineConfig::new(256);

    // A synthetic employee table: id -> salary grade.
    let records: Vec<(i64, i64)> = (0..256).map(|i| ((i * 31 + 7) % 64, 100 + i)).collect();

    println!("searching {} records on {} PEs", records.len(), cfg.num_pes);
    for query in [7, 13, 63] {
        let r = search::run(cfg, &records, query).expect("search runs");
        println!(
            "key {query:>2}: {} matches, first value {:?} at PE {:?} ({} cycles, IPC {:.2})",
            r.matches,
            r.first_value,
            r.first_index,
            r.stats.cycles,
            r.stats.ipc()
        );
    }

    // The multithreading argument: a reduction-heavy query mix on one
    // thread stalls b+r cycles per dependent reduction; with the fleet of
    // hardware threads the pipeline stays full.
    println!("\n--- single thread vs fine-grain multithreading (same total work) ---");
    let single = {
        let program = asc::asm::assemble(&micro::unrolled_chain(15 * 40, 8)).unwrap();
        let mut m = asc::core::Machine::with_program(cfg.single_threaded(), &program).unwrap();
        m.run(10_000_000).unwrap()
    };
    let multi = {
        let program = asc::asm::assemble(&micro::unrolled_fleet(15, 40, 8)).unwrap();
        let mut m = asc::core::Machine::with_program(cfg, &program).unwrap();
        m.run(10_000_000).unwrap()
    };
    for (name, s) in [("1 thread ", &single), ("16 threads", &multi)] {
        println!(
            "{name}: {:>7} cycles, IPC {:.3}, reduction-stall cycles {}",
            s.cycles,
            s.ipc(),
            s.stalls_for(StallReason::ReductionHazard)
                + s.stalls_for(StallReason::BroadcastReductionHazard),
        );
    }
    println!("speedup from multithreading: {:.2}x", single.cycles as f64 / multi.cycles as f64);
}
