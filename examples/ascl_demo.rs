//! ASCL — the associative language — end to end: compile a program with
//! `where`/`elsewhere` masking, run it on the simulated machine, and show
//! both the generated assembly and the results.
//!
//! ```text
//! cargo run --example ascl_demo
//! ```

use asc::core::MachineConfig;
use asc::isa::Width;

const PROGRAM: &str = "
# Grade distribution: each PE holds one student's score.
par score;
score = index() * 7 % 100;        # synthetic scores 0..99

sca passing = 60;
out(count(score >= passing));      # how many pass
out(max(score));                   # best score
out(sum(score) / 16);              # mean

where (score < passing) {
    score = score + 15;            # curve only the failing scores
} elsewhere {
    where (score > 90) {
        out(first(index()));       # first student with > 90
    }
}
out(count(score >= passing));      # pass count after the curve
";

fn main() {
    println!("--- ASCL source ---{PROGRAM}");

    let asm = asc::lang::compile(PROGRAM).expect("compiles");
    println!("--- generated MTASC assembly ({} lines) ---", asm.lines().count());
    for line in asm.lines().take(14) {
        println!("{line}");
    }
    println!("        ... ({} more lines)\n", asm.lines().count().saturating_sub(14));

    let cfg = MachineConfig::new(16);
    let (outs, stats) = asc::lang::run(cfg, PROGRAM).expect("runs");
    let vals: Vec<i64> = outs.iter().map(|w| w.to_i64(Width::W16)).collect();

    println!("--- results (16 PEs) ---");
    println!("passing before curve: {}", vals[0]);
    println!("best score:           {}", vals[1]);
    println!("mean score:           {}", vals[2]);
    println!("first > 90 at PE:     {}", vals[3]);
    println!("passing after curve:  {}", vals[4]);
    println!("\nsimulated in {} cycles (IPC {:.3})", stats.cycles, stats.ipc());

    // verify against a host computation
    let scores: Vec<i64> = (0..16).map(|i| i * 7 % 100).collect();
    assert_eq!(vals[0], scores.iter().filter(|&&s| s >= 60).count() as i64);
    assert_eq!(vals[1], *scores.iter().max().unwrap());
    assert_eq!(vals[2], scores.iter().sum::<i64>() / 16);
    let curved: Vec<i64> = scores.iter().map(|&s| if s < 60 { s + 15 } else { s }).collect();
    assert_eq!(vals[4], curved.iter().filter(|&&s| s >= 60).count() as i64);
    println!("verified against host computation");
}
