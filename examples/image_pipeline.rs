//! Image statistics pipeline — the workload class the paper cites for the
//! sum unit ("used in a number of image and video processing
//! algorithms"): per-strip accumulation in the PEs, then global
//! sum/min/max reductions, threshold counting, and a histogram built from
//! repeated exact responder counts.
//!
//! ```text
//! cargo run --example image_pipeline
//! ```

use asc::core::MachineConfig;
use asc::kernels::image;

fn main() {
    // A synthetic 64x16 "image" with a bright band in the middle.
    let (w, h) = (64usize, 16usize);
    let pixels: Vec<i64> = (0..w * h)
        .map(|i| {
            let y = i / w;
            if (6..10).contains(&y) {
                20 + (i % 7) as i64
            } else {
                (i % 5) as i64
            }
        })
        .collect();

    let cfg = MachineConfig::new(256);
    let stats = image::run(cfg, &pixels, 15).expect("runs");
    let (sum, min, max, above) = image::reference(&pixels, 15, cfg.num_pes);
    assert_eq!((stats.sum, stats.min, stats.max, stats.above_threshold), (sum, min, max, above));

    println!("{}x{} image on {} PEs ({} pixels per PE)", w, h, cfg.num_pes, (w * h).div_ceil(256));
    println!("  sum  = {}", stats.sum);
    println!("  min  = {}, max = {}", stats.min, stats.max);
    println!("  pixels > 15: {}  (the bright band)", stats.above_threshold);
    println!("  simulated cycles: {}", stats.stats.cycles);

    let (hist, hstats) = image::histogram::run(cfg, &pixels[..256], 9, 27).expect("histogram runs");
    assert_eq!(hist, image::histogram::reference(&pixels[..256], 9, 27));
    println!("\nhistogram of the first row block (9 bins over [0,27)):");
    for (b, count) in hist.iter().enumerate() {
        println!(
            "  [{:>2}..{:>2})  {:>3}  {}",
            b * 3,
            (b + 1) * 3,
            count,
            "#".repeat(*count as usize / 2)
        );
    }
    println!("  histogram cycles: {}", hstats.cycles);
}
