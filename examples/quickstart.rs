//! Quickstart: assemble a small associative program, run it on the
//! prototype configuration (16 PEs, 16 threads, pipelined networks), and
//! inspect results and pipeline statistics.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use asc::core::{Machine, MachineConfig};
use asc::isa::{Width, Word};

fn main() {
    // One record per PE: find the maximum and who holds it, count how
    // many PEs exceed a broadcast threshold.
    let source = "
        plw    p2, 0(p0)       ; load the data distributed below
        pidx   p1              ; each PE learns its index
        rmax   s1, p2          ; global maximum (pipelined reduction)
        pceqs  pf1, p2, s1     ; associative search for the maximum
        pfirst pf2, pf1        ; multiple response resolution
        rget   s2, p1, pf2     ; index of the first responder
        li     s3, 20
        pfclr  pf3
        pcles  pf3, p2, s3     ; data <= 20 ...
        pfnot  pf3, pf3        ; ... inverted: data > 20
        rcount s4, pf3         ; exact responder count
        halt
    ";

    let program = asc::asm::assemble(source).expect("assembles");
    println!("program: {} instructions", program.len());

    let cfg = MachineConfig::prototype();
    let mut m = Machine::with_program(cfg, &program).expect("fits imem");

    // Distribute one value per PE (the host side of the prototype's
    // off-chip memory path).
    let data: [u32; 16] = [3, 17, 9, 42, 42, 1, 0, 5, 42, 7, 2, 2, 30, 41, 40, 39];
    let words: Vec<Word> = data.iter().map(|&v| Word::new(v, Width::W16)).collect();
    m.array_mut().scatter_column(0, &words).expect("fits local memory");

    let stats = m.run(100_000).expect("runs to halt");

    println!("max value    = {}", m.sreg(0, 1).to_u32());
    println!("held by PE   = {}", m.sreg(0, 2).to_u32());
    println!("values > 20  = {}", m.sreg(0, 4).to_u32());
    println!();
    println!("--- pipeline statistics ---");
    print!("{}", stats.report());
    println!();
    println!("--- machine geometry ---");
    let t = m.timing();
    println!(
        "{} PEs, broadcast latency b = {} cycles, reduction latency r = {} cycles",
        cfg.num_pes, t.b, t.r
    );
}
