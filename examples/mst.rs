//! Minimum spanning tree with Prim's algorithm — the canonical
//! associative-computing demonstration: one vertex per PE, each Prim step
//! is a constant number of associative operations (masked RMIN → search →
//! resolve → broadcast → masked PMIN), so the MST takes O(n) steps.
//!
//! ```text
//! cargo run --example mst
//! ```

use asc::core::MachineConfig;
use asc::kernels::mst;

fn main() {
    for n in [8usize, 16, 32, 48] {
        let graph = mst::random_graph(n, 100, n as u64);
        let cfg = MachineConfig::new(64);
        let result = mst::run(cfg, &graph).expect("MST runs");
        let expect = mst::reference(&graph);
        assert_eq!(result.total_weight, expect, "simulator vs host Prim");
        println!(
            "n = {n:>2}: MST weight {:>4} (verified), {:>5} cycles, {:>4} instructions, {:.1} instr/vertex",
            result.total_weight,
            result.stats.cycles,
            result.stats.issued,
            result.stats.issued as f64 / n as f64,
        );
    }

    println!();
    println!("Instructions per vertex are ~constant: each Prim step is O(1)");
    println!("associative operations regardless of graph size — the ASC claim.");
}
