//! Air-traffic track association — the workload associative computing was
//! invented for (STARAN at Goodyear Aerospace, the machine the ASC model
//! grew out of). Simulates aircraft flying across a radar scope, feeds
//! the reports through the associative tracker kernel, and shows the
//! track table converging.
//!
//! ```text
//! cargo run --example air_traffic
//! ```

use asc::core::MachineConfig;
use asc::kernels::tracker;

fn main() {
    // Three aircraft on straight-line courses, five radar sweeps, with a
    // couple of spurious reports (clutter) mixed in.
    let mut reports: Vec<(i64, i64)> = Vec::new();
    let aircraft: [(i64, i64, i64, i64); 3] =
        [(-50, -40, 6, 4), (40, -50, -4, 6), (-45, 45, 6, -5)];
    for sweep in 0..5i64 {
        for &(x0, y0, vx, vy) in &aircraft {
            reports.push((x0 + vx * sweep, y0 + vy * sweep));
        }
        if sweep == 2 {
            reports.push((0, 0)); // clutter
        }
    }

    let cfg = MachineConfig::new(16);
    let result = tracker::run(cfg, &reports).expect("tracker runs");
    let (expect, dropped) = tracker::reference(&reports, cfg.num_pes);
    assert_eq!(result.tracks, expect, "verified against host tracker");
    assert_eq!(result.dropped, dropped);

    println!("{} radar reports processed in {} cycles", reports.len(), result.stats.cycles);
    println!(
        "({} instructions, {:.1} per report — constant associative work)\n",
        result.stats.issued,
        result.stats.issued as f64 / reports.len() as f64
    );
    println!("track table (one PE per track):");
    for (pe, t) in result.tracks.iter().enumerate() {
        if let Some(t) = t {
            println!(
                "  PE {pe:>2}: position ({:>4}, {:>4})  {} hits{}",
                t.x,
                t.y,
                t.hits,
                if t.hits == 1 { "  <- clutter, never re-associated" } else { "" }
            );
        }
    }
    println!(
        "\nEach report: broadcast -> parallel distance -> gated RMIN ->\n\
         MRR pick -> masked update. New tracks allocate a free PE via the\n\
         multiple response resolver: associative memory management."
    );
}
