//! Differential tests pinning the block-fusion engine: every kernel must
//! produce bit-identical results, cycle counts, and statistics with
//! fusion on (the default) and off (`MachineConfig::without_fusion`), in
//! both execution regimes, and memory faults must carry the same
//! identity either way.

use asc::core::{Machine, MachineConfig, RunError};
use asc::kernels::{image, mst, search, sort, string_match};

/// A machine that exercises the rayon-over-tiles path with a short tail
/// tile (100 PEs = one full tile + 36 lanes).
fn parallel_cfg() -> MachineConfig {
    let mut cfg = MachineConfig::new(100);
    cfg.parallel_threshold = 1;
    cfg
}

#[test]
fn kernels_bit_identical_with_and_without_fusion() {
    for cfg in [MachineConfig::new(64), parallel_cfg()] {
        let un = cfg.without_fusion();

        let values: Vec<i64> = (0..cfg.num_pes as i64).map(|i| (i * 37 + 11) % 101 - 50).collect();
        let a = sort::run(cfg, &values).unwrap();
        let b = sort::run(un, &values).unwrap();
        assert_eq!(a.sorted, sort::reference(&values));
        assert_eq!((a.sorted, a.stats), (b.sorted, b.stats), "sort");

        let records: Vec<(i64, i64)> = (0..cfg.num_pes as i64).map(|i| (i % 7, i)).collect();
        let a = search::run(cfg, &records, 3).unwrap();
        let b = search::run(un, &records, 3).unwrap();
        assert_eq!(
            (a.matches, a.first_value, a.first_index, a.stats),
            (b.matches, b.first_value, b.first_index, b.stats),
            "search"
        );

        let pixels: Vec<i64> = (0..cfg.num_pes as i64 * 8).map(|i| (i * 13) % 100).collect();
        let a = image::run(cfg, &pixels, 40).unwrap();
        let b = image::run(un, &pixels, 40).unwrap();
        assert_eq!(
            (a.sum, a.min, a.max, a.above_threshold, a.stats),
            (b.sum, b.min, b.max, b.above_threshold, b.stats),
            "image"
        );

        let graph = mst::random_graph(24, 30, 7);
        let a = mst::run(cfg, &graph).unwrap();
        let b = mst::run(un, &graph).unwrap();
        assert_eq!(a.total_weight, mst::reference(&graph));
        assert_eq!((a.total_weight, a.stats), (b.total_weight, b.stats), "mst");

        let text: Vec<u8> = (0..cfg.num_pes).map(|i| b"abcab"[i % 5]).collect();
        let a = string_match::run(cfg, &text, b"abc").unwrap();
        let b = string_match::run(un, &text, b"abc").unwrap();
        assert_eq!((a.count, a.first, a.stats), (b.count, b.first, b.stats), "string_match");
    }
}

#[test]
fn fusion_engine_actually_fuses() {
    // The image kernel's strip loop is a fusible block (plw/padd/pmax/
    // pmin under flag masks); with one live thread it must execute fused.
    let src = "
        pidx   p1
        pclti  pf1, p1, 8
        pli    p2, 0
        pli    p3, 5
        padd   p2, p2, p3 ?pf1
        paddi  p2, p2, 1 ?pf1
        pcgt   pf2, p2, p3
        pfand  pf1, pf1, pf2
        halt
    ";
    let program = asc::asm::assemble(src).unwrap();
    let mut m = Machine::with_program(MachineConfig::new(16), &program).unwrap();
    m.run(100_000).unwrap();
    let fs = m.fusion_stats();
    assert!(fs.static_blocks >= 1, "program has a fusible block: {fs:?}");
    assert!(fs.instrs_fused >= 4, "block executed fused: {fs:?}");
    assert!(fs.blocks_executed >= 1);
    assert!(fs.mean_block_len() >= 2.0);
    assert!(fs.fused_fraction(m.stats().issued) > 0.0);

    // Same program, fusion off: engine never engages.
    let mut m = Machine::with_program(MachineConfig::new(16).without_fusion(), &program).unwrap();
    m.run(100_000).unwrap();
    assert_eq!(m.fusion_stats().instrs_fused, 0);
}

#[test]
fn memory_faults_keep_their_identity_under_fusion() {
    // psw inside a fusible block faults at its own pc and PE, not the
    // block entry. PE local memory is 512 words; base 200 + offset 127
    // overflows for every active lane, lowest PE wins.
    let src = "
        pli    p1, 200
        paddi  p2, p1, 1
        psw    p2, 127(p1)
        halt
    ";
    let program = asc::asm::assemble(src).unwrap();
    let mut cfg = MachineConfig::new(16);
    cfg.lmem_words = 256;
    let errs: Vec<RunError> = [cfg, cfg.without_fusion()]
        .into_iter()
        .map(|c| {
            let mut m = Machine::with_program(c, &program).unwrap();
            m.run(100_000).unwrap_err()
        })
        .collect();
    assert_eq!(errs[0], errs[1], "fused and unfused faults must agree");
    match &errs[0] {
        RunError::PeMemoryFault { thread, pc, fault } => {
            assert_eq!((*thread, *pc, fault.pe), (0, 2, 0), "fault identity");
        }
        other => panic!("expected a PE memory fault, got {other:?}"),
    }
}
