//! Differential validation of the inter-thread race analyzer — the
//! family-6 severity contract enforced by execution:
//!
//! * every fixture under `tests/fixtures/races/` flagged `E6001`
//!   ("provably schedule-divergent") really does reach **different
//!   architectural states** under perturbed legal schedules,
//! * warning-severity race fixtures execute without faulting (family 6
//!   errors are divergence proofs, not fault proofs — the program runs
//!   fine under every single schedule, it just doesn't run *the same*),
//! * the shipped kernel corpus is race-clean under the analyzer **and**
//!   bit-identical across perturbed schedules, so the analyzer's
//!   silence on the corpus is backed by the machine itself,
//! * the one genuinely multithreaded data-parallel kernel (`batch`)
//!   produces schedule-independent results on real data.
//!
//! Schedule perturbation (seeds > 0) keeps every schedule legal — only
//! the rotation hand-off order and switch-penalty timing vary — so a
//! race-free program must reach the same registers/flags/memory no
//! matter the seed. See `docs/static-analysis.md` for why *cycle counts*
//! are excluded from this comparison.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use asc::core::{Machine, MachineConfig};
use asc::kernels::{batch, harness};

const SEEDS: u64 = 16;
const CORPUS_SEEDS: u64 = 8;
const BUDGET: u64 = 50_000_000;

fn fixtures() -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> =
        fs::read_dir(Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/races"))
            .expect("fixture dir")
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "asc"))
            .collect();
    v.sort();
    assert!(!v.is_empty(), "race fixtures present");
    v
}

/// Final architectural states across perturbed schedules, plus how many
/// seeds faulted (race fixtures are built to never fault).
fn explore(program: &asc::asm::Program, cfg: MachineConfig, seeds: u64) -> (BTreeSet<u64>, usize) {
    let mut digests = BTreeSet::new();
    let mut faults = 0;
    for seed in 0..seeds {
        let mut m = Machine::with_program(cfg.with_sched_seed(seed), program).unwrap();
        match m.run(BUDGET) {
            Ok(_) => {
                digests.insert(m.arch_digest());
            }
            Err(_) => faults += 1,
        }
    }
    (digests, faults)
}

/// The teeth behind `E6001`: every fixture the analyzer flags as
/// provably schedule-divergent reaches at least two distinct final
/// states across perturbed schedules, and no fixture faults (the races
/// are data races, not crashes).
#[test]
fn error_flagged_race_fixtures_diverge_across_schedules() {
    let cfg = MachineConfig::prototype();
    let mut proven = 0usize;
    for path in fixtures() {
        let src = fs::read_to_string(&path).unwrap();
        let program = asc::asm::assemble(&src)
            .unwrap_or_else(|e| panic!("{path:?}: {}", asc::asm::render_errors(&e)));
        let report = asc::verify::analyze(&program, &cfg);
        let has_error = report.diagnostics.iter().any(|d| d.code.starts_with("E6"));
        let has_family6 = report.diagnostics.iter().any(|d| d.code.as_bytes()[1] == b'6');
        assert!(has_family6, "{path:?}: race fixture triggers no family-6 finding");
        let (digests, faults) = explore(&program, cfg, SEEDS);
        assert_eq!(faults, 0, "{path:?}: race fixtures must not fault");
        if has_error {
            proven += 1;
            assert!(
                digests.len() >= 2,
                "{path:?}: flagged E6001 but all {SEEDS} schedules agree — the severity \
                 contract says errors are *proven* divergent",
            );
        }
    }
    assert!(proven >= 2, "at least two E6001 fixtures keep the contract non-vacuous");
}

/// Warning-severity findings impose no divergence obligation, but each
/// code of the family must have a fixture demonstrating it.
#[test]
fn race_fixtures_cover_the_whole_family() {
    let cfg = MachineConfig::prototype();
    let mut seen: BTreeSet<&'static str> = BTreeSet::new();
    for path in fixtures() {
        let src = fs::read_to_string(&path).unwrap();
        let program = asc::asm::assemble(&src).unwrap();
        for d in asc::verify::analyze(&program, &cfg).diagnostics {
            if d.code.as_bytes()[1] == b'6' {
                seen.insert(d.code);
            }
        }
    }
    for code in ["E6001", "W6002", "W6003", "W6004", "W6005"] {
        assert!(seen.contains(code), "no race fixture triggers {code} (have {seen:?})");
    }
}

/// The analyzer stays silent on the shipped kernel corpus, and the
/// machine agrees: every corpus program reaches the same architectural
/// state under every perturbed schedule. Run by ci.sh under the default
/// geometry and again under `MTASC_SEGMENTS=4` and `MTASC_NO_SIMD=1`.
#[test]
fn kernel_corpus_is_race_clean_and_schedule_invariant() {
    // The full machine (pipelined multiplier) so every corpus kernel runs.
    let cfg = MachineConfig::new(16);
    for (name, src) in harness::corpus() {
        let program = asc::asm::assemble(&src).unwrap();
        let report = asc::verify::analyze(&program, &cfg);
        let fam6: Vec<_> =
            report.diagnostics.iter().filter(|d| d.code.as_bytes()[1] == b'6').collect();
        assert!(fam6.is_empty(), "{name}: corpus kernel flagged by the race passes: {fam6:?}");
        let (digests, faults) = explore(&program, cfg, CORPUS_SEEDS);
        assert_eq!(faults, 0, "{name}: corpus kernel faulted under a perturbed schedule");
        assert_eq!(
            digests.len(),
            1,
            "{name}: corpus kernel reaches {} distinct states across {CORPUS_SEEDS} seeds",
            digests.len()
        );
    }
}

/// The batch kernel — the paper's worked multithreading example — gives
/// schedule-independent answers on real data: every seed reproduces the
/// host reference counts.
#[test]
fn batch_results_are_schedule_invariant_on_real_data() {
    let keys: Vec<i64> = (0..16).map(|i| (i * 7) % 5).collect();
    let queries: Vec<i64> = (0..8).map(|i| i % 5).collect();
    let expect = batch::reference(&keys, &queries);
    for seed in 0..CORPUS_SEEDS {
        let cfg = MachineConfig::new(16).with_sched_seed(seed);
        let r = batch::run(cfg, &keys, &queries, 4).unwrap();
        assert_eq!(r.counts, expect, "seed {seed}");
    }
}
