//! The paper's claims, checked end-to-end through the public API. Each
//! test names the section making the claim.

use asc::core::baseline::run_nonpipelined;
use asc::core::{Machine, MachineConfig, StallReason};
use asc::fpga::{ClockModel, FpgaConfig};
use asc::kernels::micro;

fn cycles(cfg: MachineConfig, src: &str) -> asc::core::Stats {
    let program = asc::asm::assemble(src).unwrap();
    let mut m = Machine::with_program(cfg, &program).unwrap();
    m.run(100_000_000).unwrap()
}

fn micro_cfg(p: usize) -> MachineConfig {
    let mut cfg = MachineConfig::new(p);
    cfg.lmem_words = 8;
    cfg
}

/// §4.2 / Figure 2: "a stall can be avoided by forwarding the result from
/// the scalar EX stage to the parallel B1 stage."
#[test]
fn claim_broadcast_hazards_forwarded() {
    let stats = cycles(MachineConfig::prototype(), "sub s1, s2, s3\npadds p1, p2, s1\nhalt\n");
    assert_eq!(stats.stalls_for(StallReason::BroadcastHazard), 0);
}

/// §4.2: "the scalar instruction has to stall for up to b + r clock
/// cycles."
#[test]
fn claim_reduction_stall_is_b_plus_r() {
    for p in [16usize, 256, 4096] {
        let cfg = micro_cfg(p).single_threaded();
        let t = cfg.timing();
        let stats = cycles(cfg, "rmax s1, p2\nsub s3, s1, s1\nhalt\n");
        assert_eq!(stats.stalls_for(StallReason::ReductionHazard), t.b + t.r, "p = {p}");
    }
}

/// §5: "so long as there is at least one thread that is not stalled in
/// every cycle, a fine-grain multithreaded processor will never stall."
#[test]
fn claim_enough_threads_eliminate_stalls() {
    let stats = cycles(micro_cfg(16), &micro::unrolled_fleet(15, 50, 8));
    // issue slots essentially full once spawn/join ramp is amortized
    assert!(stats.ipc() > 0.95, "IPC {}", stats.ipc());
}

/// §5: "the latency could be much higher than the degree of
/// instruction-level parallelism in the code" — a single thread cannot
/// hide the stall at scale, and it worsens with p.
#[test]
fn claim_single_thread_degrades_with_scale() {
    let ipc_at = |p| cycles(micro_cfg(p).single_threaded(), &micro::reduction_chain(100)).ipc();
    let small = ipc_at(16);
    let large = ipc_at(4096);
    assert!(large < small * 0.5, "{large} !<< {small}");
}

/// §5: coarse-grain multithreading switches are too expensive for the
/// short, frequent stalls of reduction hazards.
#[test]
fn claim_fine_grain_beats_coarse_grain() {
    let src = micro::unrolled_fleet(8, 40, 8);
    let fine = cycles(micro_cfg(256), &src);
    let coarse = cycles(micro_cfg(256).coarse_grain(4), &src);
    assert!(fine.cycles < coarse.cycles);
}

/// §1/§4: pipelining keeps the clock high while the non-pipelined
/// broadcast/reduction clock degrades with PE count; combined with
/// multithreading, throughput at scale favours the proposed design.
#[test]
fn claim_pipelined_mt_wins_at_scale() {
    let model = ClockModel::default();
    let p = 1024usize;
    let fcfg = FpgaConfig { num_pes: p as u64, ..FpgaConfig::prototype() };

    let program = asc::asm::assemble(&micro::mixed_workload(100)).unwrap();
    let np = run_nonpipelined(micro_cfg(p), &program, 100_000_000).unwrap();
    let np_mips = np.instructions as f64 / np.cycles as f64 * model.nonpipelined_mhz(&fcfg);

    let mt = cycles(micro_cfg(p), &micro::mixed_fleet(15, 30));
    let mt_mips = mt.ipc() * model.pipelined_mhz(&fcfg);

    assert!(
        mt_mips > 3.0 * np_mips,
        "multithreaded pipelined {mt_mips:.1} vs non-pipelined {np_mips:.1} M instr/s"
    );
}

/// §6.4: every reduction unit has an initiation rate of one operation per
/// cycle — independent reductions from one thread issue back-to-back.
#[test]
fn claim_network_initiation_rate() {
    let stats = cycles(
        micro_cfg(1024).single_threaded(),
        "rsum s1, p1\nrmax s2, p1\nrmin s3, p1\nror s4, p1\nrand s5, p1\nhalt\n",
    );
    assert_eq!(stats.stalls_for(StallReason::Structural), 0);
    assert_eq!(stats.stalls_for(StallReason::ReductionHazard), 0);
}

/// §6.2: "since division is an uncommon operation, structural hazards for
/// the divider should not degrade performance significantly."
#[test]
fn claim_rare_division_is_cheap() {
    // 4 threads, one division per 16 other instructions
    let src = "
main:   li   s1, worker
        tspawn s2, s1
        tspawn s3, s1
        tspawn s4, s1
        tjoin s2
        tjoin s3
        tjoin s4
        halt
worker: li   s6, 30
        pidx p1
wloop:  pdivi p2, p1, 3
        paddi p3, p3, 1
        paddi p3, p3, 1
        paddi p3, p3, 1
        paddi p3, p3, 1
        paddi p3, p3, 1
        paddi p3, p3, 1
        paddi p3, p3, 1
        paddi p3, p3, 1
        paddi p3, p3, 1
        paddi p3, p3, 1
        paddi p3, p3, 1
        paddi p3, p3, 1
        paddi p3, p3, 1
        paddi p3, p3, 1
        paddi p3, p3, 1
        paddi p3, p3, 1
        addi s6, s6, -1
        ceqi f1, s6, 0
        bf   f1, wloop
        texit
";
    let stats = cycles(micro_cfg(64), src);
    let structural = stats.stalls_for(StallReason::Structural) as f64;
    assert!(
        structural / stats.cycles as f64 <= 0.10,
        "structural stalls {:.1}% should be minor",
        100.0 * structural / stats.cycles as f64
    );
}

/// §7: the prototype supports 16 thread contexts; allocating a 17th
/// stream fails gracefully (tspawn returns all-ones).
#[test]
fn claim_sixteen_thread_contexts() {
    let src = "
main:   li   s1, worker
        li   s2, 0
        li   s3, 15
spawnl: ceq  f1, s2, s3
        bt   f1, extra
        tspawn s4, s1
        addi s2, s2, 1
        j    spawnl
extra:  tspawn s5, s1   ; 17th context: must fail
        halt
worker: j worker
";
    let program = asc::asm::assemble(src).unwrap();
    let mut m = Machine::with_program(MachineConfig::prototype(), &program).unwrap();
    m.run(1_000_000).unwrap();
    // 15 spawns succeeded (s4 holds last tid), the 16th failed
    assert!(m.sreg(0, 4).to_u32() < 16);
    assert_eq!(m.sreg(0, 5).to_u32(), 0xffff);
}
