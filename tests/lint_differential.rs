//! Differential validation of the lint pipeline against the machine
//! itself — the severity contract enforced by execution:
//!
//! * every **error**-severity finding corresponds to a real runtime
//!   fault: each error-flagged fixture actually fails `Machine::run`,
//! * programs that execute cleanly never carry error findings (no false
//!   errors), checked over the lint fixtures and fuzzed random programs,
//! * the uninitialized-read pass agrees with a straight-line oracle
//!   built from the ISA's own `Instr::uses()`/`defs()` operand lists.

use std::collections::HashSet;
use std::fs;
use std::path::{Path, PathBuf};

use asc::core::{Machine, MachineConfig};
use asc::isa::gen::random_straightline_instr;
use asc::isa::{Instr, Operand, RegClass, Width};
use asc::verify::Severity;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn fixtures() -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> =
        fs::read_dir(Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/lint"))
            .expect("fixture dir")
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "asc"))
            .collect();
    v.sort();
    v
}

/// Every fixture the analyzer flags with an error really faults when
/// executed; every fixture it passes as error-free runs to completion.
/// This is the teeth behind "error = proven runtime fault".
#[test]
fn error_findings_match_runtime_faults_on_fixtures() {
    let cfg = MachineConfig::prototype();
    for path in fixtures() {
        let src = fs::read_to_string(&path).unwrap();
        let program = asc::asm::assemble(&src).unwrap();
        let report = asc::verify::analyze(&program, &cfg);
        let mut machine = Machine::with_program(cfg, &program).unwrap();
        let outcome = machine.run(10_000_000);
        if report.error_count() > 0 {
            assert!(
                outcome.is_err(),
                "{path:?}: lint reports {} error(s) but the machine ran clean",
                report.error_count()
            );
        } else {
            assert!(
                outcome.is_ok(),
                "{path:?}: lint reports no errors but the machine faulted: {:?}",
                outcome.unwrap_err()
            );
        }
    }
}

/// Generate a random straight-line program whose memory accesses cannot
/// fault on a W8 machine (same clamping as `tests/differential.rs`).
fn random_program(rng: &mut StdRng, len: usize) -> Vec<Instr> {
    let mut instrs = Vec::with_capacity(len + 1);
    for _ in 0..len {
        let mut i = random_straightline_instr(rng);
        match &mut i {
            Instr::Lw { off, .. } | Instr::Sw { off, .. } => *off = off.rem_euclid(128),
            Instr::Plw { off, .. } | Instr::Psw { off, .. } => *off = off.rem_euclid(127),
            _ => {}
        }
        instrs.push(i);
    }
    instrs.push(Instr::Halt);
    instrs
}

/// Straight-line oracle for the uninitialized-read pass: walk the
/// program in order tracking which registers have been textually
/// assigned (via `Instr::defs()`), and predict a W1001 for every use of
/// a register not yet written (via `Instr::uses()`, excluding the
/// activity-mask flag, which W4001 owns). Returns the expected number of
/// W1001 findings per pc.
fn uninit_oracle(instrs: &[Instr]) -> Vec<usize> {
    // one init bitmask per register class; bit 0 of the GPR files is the
    // hardwired zero register (never reported, and `uses()` filters it)
    let mut init = [1u16, 1, 0, 0]; // SGpr, PGpr, SFlag, PFlag
    let class_idx = |c: RegClass| match c {
        RegClass::SGpr => 0,
        RegClass::PGpr => 1,
        RegClass::SFlag => 2,
        RegClass::PFlag => 3,
    };
    let mut expected = vec![0usize; instrs.len()];
    for (pc, instr) in instrs.iter().enumerate() {
        let mask_op = instr.mask().and_then(|m| m.flag()).map(Operand::pf);
        let mut seen: HashSet<Operand> = HashSet::new();
        for op in instr.uses() {
            if Some(op) == mask_op || !seen.insert(op) {
                continue;
            }
            if init[class_idx(op.class)] >> op.index & 1 == 0 {
                expected[pc] += 1;
            }
        }
        for op in instr.defs() {
            init[class_idx(op.class)] |= 1 << op.index;
        }
    }
    expected
}

proptest! {
    /// Fuzz: random straight-line programs execute without faulting, so
    /// the analyzer must not report a single error-severity finding on
    /// them — errors are proven faults, and there is nothing to prove.
    #[test]
    fn no_false_errors_on_random_programs(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = rng.random_range(10..60);
        let instrs = random_program(&mut rng, len);
        let words: Vec<u32> = instrs.iter().map(asc::isa::encode).collect();
        let cfg = MachineConfig::new(8).with_width(Width::W8).single_threaded();

        let mut machine = Machine::new(cfg);
        machine.load_words(&words).unwrap();
        machine.run(10_000_000).unwrap();

        let report = asc::verify::analyze_words(&words, &cfg);
        for d in &report.diagnostics {
            prop_assert!(
                d.severity != Severity::Error,
                "false error {} at pc {} on a program that ran clean: {}",
                d.code, d.pc, d.message
            );
        }
    }

    /// Fuzz: the dataflow pass's W1001 findings agree exactly, per
    /// instruction, with the program-order oracle. Straight-line code has
    /// a single path, so the maybe-uninitialized refinement (W1002) must
    /// never fire.
    #[test]
    fn uninit_pass_matches_straightline_oracle(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = rng.random_range(5..40);
        let instrs = random_program(&mut rng, len);
        let words: Vec<u32> = instrs.iter().map(asc::isa::encode).collect();
        let cfg = MachineConfig::new(8).with_width(Width::W8).single_threaded();

        let report = asc::verify::analyze_words(&words, &cfg);
        let mut got = vec![0usize; instrs.len()];
        for d in &report.diagnostics {
            prop_assert!(d.code != "W1002", "W1002 on single-path code at pc {}", d.pc);
            if d.code == "W1001" {
                got[d.pc as usize] += 1;
            }
        }
        let expected = uninit_oracle(&instrs);
        for pc in 0..instrs.len() {
            prop_assert_eq!(
                got[pc], expected[pc],
                "W1001 count at pc {} (`{}`): analyzer {} vs oracle {}",
                pc, asc::asm::disassemble(&instrs[pc]), got[pc], expected[pc]
            );
        }
    }
}
