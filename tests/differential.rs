//! Differential tests through the public API: random programs travel
//! source → assembler → encoder → decoder → both execution engines, and
//! everything must agree.

use asc::core::{Emulator, Machine, MachineConfig};
use asc::isa::gen::random_straightline_instr;
use asc::isa::{Instr, Width};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generate a random straight-line program whose memory accesses cannot
/// fault on a W8 machine.
fn random_program(rng: &mut StdRng, len: usize) -> Vec<Instr> {
    let mut instrs = Vec::with_capacity(len + 1);
    for _ in 0..len {
        let mut i = random_straightline_instr(rng);
        match &mut i {
            Instr::Lw { off, .. } | Instr::Sw { off, .. } => *off = off.rem_euclid(128),
            Instr::Plw { off, .. } | Instr::Psw { off, .. } => *off = off.rem_euclid(127),
            _ => {}
        }
        instrs.push(i);
    }
    instrs.push(Instr::Halt);
    instrs
}

#[test]
fn assembler_text_path_equals_binary_path() {
    // program as text → assemble → run  vs  program as words → run
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..10 {
        let instrs = random_program(&mut rng, 40);
        let text: String = instrs.iter().map(|i| asc::asm::disassemble(i) + "\n").collect();
        let program = asc::asm::assemble(&text).unwrap();
        assert_eq!(program.instrs, instrs);

        let cfg = MachineConfig::new(8).with_width(Width::W8).single_threaded();
        let mut via_text = Machine::with_program(cfg, &program).unwrap();
        via_text.run(1_000_000).unwrap();

        let words: Vec<u32> = instrs.iter().map(asc::isa::encode).collect();
        let mut via_words = Machine::new(cfg);
        via_words.load_words(&words).unwrap();
        via_words.run(1_000_000).unwrap();

        for r in 0..16 {
            assert_eq!(via_text.sreg(0, r), via_words.sreg(0, r));
        }
    }
}

#[test]
fn timing_and_functional_engines_agree_via_public_api() {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for trial in 0..15 {
        let len = rng.random_range(10..80);
        let instrs = random_program(&mut rng, len);
        let words: Vec<u32> = instrs.iter().map(asc::isa::encode).collect();
        let cfg = MachineConfig::new(16).with_width(Width::W8).single_threaded();

        let mut machine = Machine::new(cfg);
        machine.load_words(&words).unwrap();
        let stats = machine.run(10_000_000).unwrap();

        let mut emu = Emulator::new(cfg);
        emu.machine_mut().load_words(&words).unwrap();
        let executed = emu.run(10_000_000).unwrap();

        // the timing machine issued exactly as many instructions as the
        // emulator executed
        assert_eq!(stats.issued, executed, "trial {trial}");
        // and cycle count ≥ instruction count (single issue)
        assert!(stats.cycles >= stats.issued);

        for pe in 0..16 {
            for reg in 0..16 {
                assert_eq!(
                    machine.array().gpr(pe, 0, reg),
                    emu.array().gpr(pe, 0, reg),
                    "trial {trial} PE {pe} p{reg}"
                );
            }
        }
        for reg in 0..16 {
            assert_eq!(machine.sreg(0, reg), emu.sreg(0, reg), "trial {trial} s{reg}");
        }
    }
}

#[test]
fn timing_is_schedule_invariant_for_functional_results() {
    // same program on fine-grain vs coarse-grain scheduling: different
    // cycle counts, identical architectural results (single thread means
    // the schedule cannot change semantics)
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let instrs = random_program(&mut rng, 60);
    let words: Vec<u32> = instrs.iter().map(asc::isa::encode).collect();

    let base = MachineConfig::new(8).with_width(Width::W8).single_threaded();
    let mut fine = Machine::new(base);
    fine.load_words(&words).unwrap();
    fine.run(10_000_000).unwrap();

    let mut coarse = Machine::new(base.coarse_grain(4));
    coarse.load_words(&words).unwrap();
    coarse.run(10_000_000).unwrap();

    for reg in 0..16 {
        assert_eq!(fine.sreg(0, reg), coarse.sreg(0, reg));
    }
}
