//! End-to-end tests for the cycle-attribution profiler and the Chrome
//! trace exporter: a golden `trace_event` fixture for a small kernel,
//! structural Perfetto-validity checks, the `mtasc.profile.v1` JSON
//! round trip, and the conservation invariant over the whole kernel
//! corpus (fused and unfused).
//!
//! After an intentional exporter change, regenerate the golden with
//! `UPDATE_CHROME_GOLDEN=1 cargo test --test obs_profile` and review the
//! diff.

use std::cell::RefCell;
use std::fs;
use std::path::{Path, PathBuf};
use std::rc::Rc;

use asc::core::obs::{chrome_trace, chrome_trace_text, Json, MemorySink, Profile, SinkHandle};
use asc::core::{Machine, MachineConfig};

/// The small kernel behind the golden fixture: one loop mixing scalar,
/// parallel, and reduction work, so the trace exercises thread tracks,
/// every pipeline-stage track family, and the in-flight counters.
const KERNEL: &str = "
        li    s2, 3
        li    s3, 0
        pidx  p1
loop:   paddi p1, p1, 1
        rsum  s1, p1
        add   s4, s4, s1
        addi  s3, s3, 1
        ceq   f1, s3, s2
        bf    f1, loop
        halt
";

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/profile")
}

fn check(golden: &Path, actual: &str) {
    if std::env::var("UPDATE_CHROME_GOLDEN").is_ok() {
        fs::create_dir_all(golden.parent().unwrap()).unwrap();
        fs::write(golden, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(golden)
        .unwrap_or_else(|_| panic!("missing golden {golden:?}; run with UPDATE_CHROME_GOLDEN=1"));
    assert_eq!(
        actual, expected,
        "chrome trace for the golden kernel diverged from {golden:?}; \
         regenerate with UPDATE_CHROME_GOLDEN=1 if intentional"
    );
}

fn traced_run(cfg: MachineConfig) -> (Machine, Vec<asc::core::obs::TraceEvent>) {
    let program = asc::asm::assemble(KERNEL).unwrap();
    let mut m = Machine::with_program(cfg, &program).unwrap();
    let mem = Rc::new(RefCell::new(MemorySink::new()));
    m.attach_sink(SinkHandle::shared(mem.clone()));
    m.attach_profiler();
    m.run(100_000).unwrap();
    let events = mem.borrow().events().to_vec();
    (m, events)
}

#[test]
fn chrome_trace_matches_golden() {
    let (m, events) = traced_run(MachineConfig::new(16));
    let text = chrome_trace_text(&chrome_trace(&events, &m.timing()));
    check(&fixture_dir().join("small_kernel.chrome.json"), &text);
}

#[test]
fn chrome_trace_is_structurally_valid_for_perfetto() {
    let (m, events) = traced_run(MachineConfig::new(16));
    let text = chrome_trace_text(&chrome_trace(&events, &m.timing()));
    // the whole document is one JSON object with a traceEvents array
    let v = Json::parse(&text).expect("valid JSON");
    let trace_events = v.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
    assert!(!trace_events.is_empty());
    for ev in trace_events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("every event has a phase");
        assert!(["M", "X", "i", "C"].contains(&ph), "unexpected phase {ph}");
        assert!(ev.get("pid").is_some(), "every event carries a pid");
        match ph {
            "M" => {
                assert!(ev.get("name").and_then(Json::as_str).is_some());
            }
            "X" => {
                assert!(ev.get("ts").is_some() && ev.get("dur").is_some());
            }
            "i" => {
                assert_eq!(ev.get("s").and_then(Json::as_str), Some("t"));
            }
            "C" => {
                assert!(ev.get("args").is_some(), "counter events carry their series");
            }
            _ => unreachable!(),
        }
    }
    // per-thread tracks and stage tracks are announced via metadata
    let names: Vec<&str> = trace_events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
        .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(Json::as_str))
        .collect();
    assert!(names.iter().any(|n| n.starts_with("thread ")), "{names:?}");
    assert!(names.iter().any(|n| n.contains("WB")), "stage tracks present: {names:?}");
}

#[test]
fn profile_json_round_trips_through_text() {
    let (mut m, _) = traced_run(MachineConfig::new(16));
    let profile = m.take_profile().expect("profiler attached");
    assert_eq!(profile.attributed_cycles(), m.stats().cycles, "conservation");
    let text = profile.to_json().to_pretty();
    let back = Profile::parse(&text).expect("parses back");
    assert_eq!(back, profile, "mtasc.profile.v1 is lossless");
    assert_eq!(back.to_json().to_pretty(), text, "re-serialization is stable");
}

#[test]
fn conservation_holds_for_every_corpus_kernel_fused_and_unfused() {
    for (name, src) in asc::kernels::harness::corpus() {
        let program = asc::asm::assemble(&src)
            .unwrap_or_else(|e| panic!("{name}: {}", asc::asm::render_errors(&e)));
        let mut profiles = Vec::new();
        for fusion in [true, false] {
            let cfg = MachineConfig::new(16);
            let cfg = if fusion { cfg } else { cfg.without_fusion() };
            let mut m = Machine::with_program(cfg, &program).unwrap();
            m.attach_profiler();
            m.run(10_000_000).unwrap_or_else(|e| panic!("{name}: {e}"));
            let p = m.take_profile().unwrap();
            assert_eq!(
                p.attributed_cycles(),
                m.stats().cycles,
                "{name} (fusion={fusion}): attributed cycles must sum to Stats::cycles"
            );
            profiles.push(p);
        }
        assert!(
            profiles[0] == profiles[1],
            "{name}: fused and unfused profiles must be bit-identical"
        );
    }
}
