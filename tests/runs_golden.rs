//! Golden-file test for `mtasc runs list --json`: a registry populated
//! with fixed, pre-stamped manifests must render exactly the checked-in
//! `tests/fixtures/runs/list.expected.json`, pinning the
//! `mtasc.run_meta.v1` wire format (field names, elision rules, ordering)
//! against accidental drift.
//!
//! After an intentional schema change, regenerate with
//! `UPDATE_RUNS_GOLDEN=1 cargo test --test runs_golden` and review the
//! diff.

use std::collections::BTreeSet;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Barrier};
use std::thread;

use asc::obs_store::{ulid_at, IndexWatcher, RunMeta, RunStatus, RunStore, INDEX_FILE};

fn golden_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/runs/list.expected.json")
}

/// Three fixed manifests covering every status, with deterministic ids
/// (fixed timestamp + fixed entropy) and deterministic clocks.
fn fixture_metas() -> Vec<RunMeta> {
    let base_ms: u64 = 1_700_000_000_000; // 2023-11-14T22:13:20Z
    let mut ok = RunMeta::begin(
        "run",
        "kernels/sort.asc",
        "fnv1a64:00000000deadbeef".into(),
        "pes=16 threads=16 arity=4 w16 b=2 r=4 rr".into(),
        16,
    );
    ok.id = ulid_at(base_ms, 1);
    ok.started_unix_ms = base_ms;
    ok.finished_unix_ms = Some(base_ms + 1_500);
    ok.status = RunStatus::Ok;
    ok.cycles = 1_024;
    ok.issued = 768;
    ok.artifacts = vec!["report.json".into(), "progress.jsonl".into()];

    let mut fault = RunMeta::begin(
        "profile",
        "spin.asc",
        "fnv1a64:0000000000c0ffee".into(),
        "pes=64 threads=8 arity=4 w32 b=3 r=5 rr".into(),
        64,
    );
    fault.id = ulid_at(base_ms + 60_000, 2);
    fault.started_unix_ms = base_ms + 60_000;
    fault.finished_unix_ms = Some(base_ms + 61_000);
    fault.status = RunStatus::Fault;
    fault.fault = Some("cycle budget exhausted".into());
    fault.cycles = 500_000;
    fault.issued = 125_000;

    let mut running = RunMeta::begin(
        "kernel",
        "<kernel>",
        "fnv1a64:0000000012345678".into(),
        "pes=16 threads=16 arity=4 w16 b=2 r=4 rr".into(),
        16,
    );
    running.id = ulid_at(base_ms + 120_000, 3);
    running.started_unix_ms = base_ms + 120_000;

    vec![ok, fault, running]
}

#[test]
fn runs_list_json_matches_golden() {
    let root = std::env::temp_dir().join(format!("mtasc_runs_golden_{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let store = RunStore::open(&root).unwrap();
    for meta in fixture_metas() {
        store.record(&meta).unwrap();
    }
    let actual = asc_cli::cmd_runs_list(&store, None, None, None, 0, true)
        .expect("runs list --json renders");
    let _ = fs::remove_dir_all(&root);

    let golden = golden_path();
    if std::env::var("UPDATE_RUNS_GOLDEN").is_ok() {
        fs::create_dir_all(golden.parent().unwrap()).unwrap();
        fs::write(&golden, &actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&golden)
        .unwrap_or_else(|_| panic!("missing golden {golden:?}; run with UPDATE_RUNS_GOLDEN=1"));
    assert_eq!(
        actual, expected,
        "runs list --json diverged from {golden:?}; \
         regenerate with UPDATE_RUNS_GOLDEN=1 if intentional"
    );
}

#[test]
fn golden_parses_and_round_trips() {
    if std::env::var("UPDATE_RUNS_GOLDEN").is_ok() {
        // regeneration mode: the sibling test may still be writing the file
        return;
    }
    let text = fs::read_to_string(golden_path()).expect("golden checked in");
    let v = asc::core::obs::Json::parse(&text).unwrap();
    let arr = v.as_arr().expect("a JSON array of manifests");
    assert_eq!(arr.len(), 3);
    for m in arr {
        assert_eq!(m.get("schema").and_then(|s| s.as_str()), Some("mtasc.run_meta.v1"));
        let meta = RunMeta::from_json(m).expect("manifest parses");
        assert_eq!(meta.to_json().to_compact(), m.to_compact(), "lossless round-trip");
    }
    // the newest run sorts first in the listing
    let ids: Vec<&str> =
        arr.iter().map(|m| m.get("id").and_then(|s| s.as_str()).unwrap()).collect();
    let mut sorted = ids.clone();
    sorted.sort_by(|a, b| b.cmp(a));
    assert_eq!(ids, sorted, "newest first");
}

/// Registry torture test: two recorders (separate `RunStore` handles,
/// like two `mtasc` processes sharing one `--runs-dir`) append to
/// `index.jsonl` while a reader paginates the listing and an
/// [`IndexWatcher`] tails it incrementally. Torn and garbage lines must
/// be skipped, never panicked on, and no finished run may be dropped.
#[test]
fn concurrent_recorders_never_corrupt_the_listing() {
    const WRITERS: usize = 2;
    const RUNS_PER_WRITER: usize = 40;
    let root = std::env::temp_dir().join(format!("mtasc_runs_torture_{}", std::process::id()));
    let _ = fs::remove_dir_all(&root);
    let store = RunStore::open(&root).unwrap();

    let barrier = Arc::new(Barrier::new(WRITERS + 2));
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let root = root.clone();
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let store = RunStore::open(&root).unwrap();
                barrier.wait();
                let mut ids = Vec::new();
                for i in 0..RUNS_PER_WRITER {
                    let meta = RunMeta::begin(
                        "run",
                        &format!("w{w}-{i}.asc"),
                        format!("fnv1a64:{:016x}", (w << 8) | i),
                        "pes=16 threads=16 arity=4 w16 b=2 r=4 rr".into(),
                        16,
                    );
                    let handle = store.begin(meta).unwrap();
                    ids.push(handle.id().to_string());
                    handle.finish_ok(i as u64 + 1, i as u64).unwrap();
                }
                ids
            })
        })
        .collect();

    // the reader paginates (as the CLI and the HTTP listing do) and tails
    // incrementally (as the server's watcher does) mid-write
    let reader = thread::spawn({
        let root = root.clone();
        let barrier = Arc::clone(&barrier);
        move || {
            let store = RunStore::open(&root).unwrap();
            let mut watcher = IndexWatcher::new(&root);
            barrier.wait();
            for _ in 0..60 {
                let page = asc_cli::cmd_runs_list(&store, None, None, Some(7), 3, true)
                    .expect("listing survives concurrent appends");
                asc::core::obs::Json::parse(&page).expect("listing is always valid JSON");
                let (snapshot, _skipped) =
                    watcher.poll().expect("incremental tail survives concurrent appends");
                let ids: Vec<&str> = snapshot.iter().map(|m| m.id.as_str()).collect();
                let mut sorted = ids.clone();
                sorted.sort_by(|a, b| b.cmp(a));
                assert_eq!(ids, sorted, "watcher snapshots stay newest-first");
            }
        }
    });

    barrier.wait();
    let expected: BTreeSet<String> = writers.into_iter().flat_map(|w| w.join().unwrap()).collect();
    reader.join().unwrap();

    // interleave registry damage: a malformed line and a torn tail
    let mut index = fs::OpenOptions::new().append(true).open(root.join(INDEX_FILE)).unwrap();
    index.write_all(b"{\"schema\":\"mtasc.run_meta.v1\", GARBAGE\n").unwrap();
    index.write_all(b"{\"schema\":\"mtasc.run_meta.v1\",\"id\":\"01TORN").unwrap();
    drop(index);

    let (metas, skipped) = store.list().unwrap();
    assert!(skipped >= 1, "the malformed line is counted, not silently eaten");
    let listed: BTreeSet<String> = metas.iter().map(|m| m.id.clone()).collect();
    assert_eq!(listed, expected, "every recorded run survives");
    assert!(
        metas.iter().all(|m| m.status == RunStatus::Ok),
        "every finish line supersedes its begin line"
    );

    // a fresh watcher sees exactly what a full list sees
    let mut watcher = IndexWatcher::new(&root);
    let (snapshot, watcher_skipped) = watcher.poll().unwrap();
    assert_eq!(
        snapshot.iter().map(|m| m.id.as_str()).collect::<Vec<_>>(),
        metas.iter().map(|m| m.id.as_str()).collect::<Vec<_>>(),
    );
    assert!(watcher_skipped >= 1);
    let _ = fs::remove_dir_all(&root);
}
