//! Golden-file tests for the lint pipeline: every fixture under
//! `tests/fixtures/lint/` is analyzed against the FPGA prototype
//! configuration and its human-readable and `mtasc.lint.v1` JSON output
//! must match the checked-in `.expected.txt` / `.expected.json` files
//! byte for byte.
//!
//! After an intentional diagnostics change, regenerate the goldens with
//! `UPDATE_LINT_GOLDEN=1 cargo test --test lint_golden` and review the
//! diff.

use std::fs;
use std::path::{Path, PathBuf};

use asc::core::MachineConfig;

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/lint")
}

fn fixtures() -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = fs::read_dir(fixture_dir())
        .expect("fixture dir")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "asc"))
        .collect();
    v.sort();
    assert!(v.len() >= 6, "at least one fixture per diagnostic family");
    v
}

fn check(path: &Path, ext: &str, actual: &str) {
    let golden = path.with_extension(ext);
    if std::env::var("UPDATE_LINT_GOLDEN").is_ok() {
        fs::write(&golden, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&golden)
        .unwrap_or_else(|_| panic!("missing golden {golden:?}; run with UPDATE_LINT_GOLDEN=1"));
    assert_eq!(
        actual, expected,
        "lint output for {path:?} diverged from {golden:?}; \
         regenerate with UPDATE_LINT_GOLDEN=1 if intentional"
    );
}

#[test]
fn fixture_output_matches_goldens() {
    let cfg = MachineConfig::prototype();
    for path in fixtures() {
        let src = fs::read_to_string(&path).unwrap();
        let program = asc::asm::assemble(&src)
            .unwrap_or_else(|e| panic!("{path:?}: {}", asc::asm::render_errors(&e)));
        let report = asc::verify::analyze(&program, &cfg);
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        check(&path, "expected.txt", &report.render(Some(&src), &name));
        check(&path, "expected.json", &(report.to_json().to_pretty() + "\n"));
    }
}

#[test]
fn fixtures_cover_every_diagnostic_family() {
    let cfg = MachineConfig::prototype();
    let mut seen: Vec<char> = Vec::new();
    for path in fixtures() {
        let src = fs::read_to_string(&path).unwrap();
        let program = asc::asm::assemble(&src).unwrap();
        for d in asc::verify::analyze(&program, &cfg).diagnostics {
            // family = leading digit of the numeric part (W1001 -> '1')
            let fam = d.code.as_bytes()[1] as char;
            if !seen.contains(&fam) {
                seen.push(fam);
            }
        }
    }
    for fam in ['0', '1', '2', '3', '4', '5', '6'] {
        assert!(seen.contains(&fam), "no fixture triggers diagnostic family {fam} (have {seen:?})");
    }
}

#[test]
fn json_goldens_parse_and_round_trip() {
    for path in fixtures() {
        let golden = path.with_extension("expected.json");
        let Ok(text) = fs::read_to_string(&golden) else { continue };
        let v = asc::core::obs::Json::parse(&text).unwrap();
        assert_eq!(v.get("schema").and_then(|s| s.as_str()), Some("mtasc.lint.v1"));
        // pretty-printing the parsed value reproduces the golden exactly
        assert_eq!(v.to_pretty() + "\n", text, "{golden:?} not canonical");
    }
}
