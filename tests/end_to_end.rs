//! Cross-crate integration: assembler → machine → kernels → figures →
//! resource model, through the umbrella crate's public API only.

use asc::core::{Machine, MachineConfig};
use asc::fpga::{ClockModel, Device, FpgaConfig, ResourceReport};
use asc::isa::{Width, Word};

#[test]
fn prototype_geometry_is_consistent_across_crates() {
    // MachineConfig, NetworkConfig, Timing and FpgaConfig must agree on
    // the prototype: 16 PEs, k=4 ⇒ b=2, r=4.
    let mc = MachineConfig::prototype();
    let t = mc.timing();
    assert_eq!((t.b, t.r), (2, 4));
    let nc = mc.network();
    assert_eq!(nc.broadcast_latency(), 2);
    assert_eq!(nc.reduction_latency(), 4);
    let fc = FpgaConfig::from_machine(&mc);
    assert_eq!(fc.num_pes, 16);
    assert_eq!(fc.threads, 16);
    assert_eq!(fc.width, Width::W16);
}

#[test]
fn assembled_program_runs_and_disassembles() {
    let src = "
start:  li    s1, 5
        pmovs p2, s1
        rsum  s3, p2
        halt
";
    let program = asc::asm::assemble(src).unwrap();
    // disassemble and re-assemble every instruction
    for i in &program.instrs {
        let text = asc::asm::disassemble(i);
        let again = asc::asm::assemble(&text).unwrap();
        assert_eq!(&again.instrs[0], i);
        // and the binary round trip
        assert_eq!(asc::isa::decode(asc::isa::encode(i)), Ok(*i));
    }
    let mut m = Machine::with_program(MachineConfig::prototype(), &program).unwrap();
    m.run(10_000).unwrap();
    assert_eq!(m.sreg(0, 3).to_u32(), 5 * 16);
}

#[test]
fn network_units_agree_with_machine_reductions() {
    // the machine's reduction result equals a direct network call
    use asc::isa::ReduceOp;
    use asc::network::{Network, NetworkConfig};

    let cfg = MachineConfig::new(32);
    let program = asc::asm::assemble("plw p1, 0(p0)\nrsum s1, p1\nrmaxu s2, p1\nhalt\n").unwrap();
    let mut m = Machine::with_program(cfg, &program).unwrap();
    let data: Vec<Word> = (0..32).map(|i| Word::new(i * 3 % 40, Width::W16)).collect();
    m.array_mut().scatter_column(0, &data).unwrap();
    m.run(10_000).unwrap();

    let net = Network::new(NetworkConfig::new(32, 4));
    let active = asc::pe::ActiveMask::all(32);
    assert_eq!(m.sreg(0, 1), net.reduce(ReduceOp::Sum, &data, &active, Width::W16));
    assert_eq!(m.sreg(0, 2), net.reduce(ReduceOp::MaxU, &data, &active, Width::W16));
}

#[test]
fn figures_render_from_any_configuration() {
    for p in [4usize, 16, 100, 1024] {
        let cfg = MachineConfig::new(p);
        let f1 = asc::core::pipeline::pipeline_organization(&cfg.timing());
        assert!(f1.contains(&format!("B{}", cfg.timing().b)));
        assert!(f1.contains(&format!("R{}", cfg.timing().r)));
        let f3 = asc::core::pipeline::control_unit_organization(&cfg);
        assert!(f3.contains("scheduler (rotating priority)"));
    }
}

#[test]
fn resource_model_and_machine_share_the_prototype() {
    let report = ResourceReport::model(&FpgaConfig::prototype());
    assert_eq!(report.total().les, 9_672);
    assert_eq!(report.total().rams, 104);
    assert!(report.fits(&Device::ep2c35()));
    let clock = ClockModel::default().pipelined_mhz(&FpgaConfig::prototype());
    assert!((clock - 75.0).abs() < 1.0);
}

#[test]
fn wide_machine_runs_with_rayon_path() {
    // 8192 PEs crosses the default Rayon threshold (4096)
    let mut cfg = MachineConfig::new(8192);
    cfg.lmem_words = 4;
    let program = asc::asm::assemble(
        "pidx p1
         rmaxu s1, p1
         rcount s2, pf0
         halt",
    )
    .unwrap();
    let mut m = Machine::with_program(cfg, &program).unwrap();
    m.run(100_000).unwrap();
    assert_eq!(m.sreg(0, 1).to_u32(), 8191);
}

#[test]
fn all_widths_work_end_to_end() {
    for w in Width::ALL {
        let cfg = MachineConfig::new(8).with_width(w);
        let program = asc::asm::assemble(
            "li s1, 100
             pmovs p1, s1
             paddi p1, p1, 27
             rmax s2, p1
             halt",
        )
        .unwrap();
        let mut m = Machine::with_program(cfg, &program).unwrap();
        m.run(10_000).unwrap();
        assert_eq!(m.sreg(0, 2).to_i64(w), 127, "{w}");
    }
}

#[test]
fn single_pe_machine_works() {
    // degenerate geometry: p = 1 means b = r = 0 (no tree at all)
    let cfg = MachineConfig::new(1);
    assert_eq!(cfg.timing().b, 0);
    assert_eq!(cfg.timing().r, 0);
    let program = asc::asm::assemble(
        "pidx p1
         paddi p2, p1, 5
         rsum s1, p2
         rmax s2, p2
         rcount s3, pf0
         halt",
    )
    .unwrap();
    let mut m = Machine::with_program(cfg, &program).unwrap();
    m.run(10_000).unwrap();
    assert_eq!(m.sreg(0, 1).to_u32(), 5);
    assert_eq!(m.sreg(0, 2).to_u32(), 5);
}

#[test]
fn version_constant_exists() {
    assert!(!asc::VERSION.is_empty());
}
