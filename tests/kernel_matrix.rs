//! Portability matrix: the kernel suite must produce correct results on
//! every machine shape — PE counts, widths, arities, thread counts,
//! scheduler policies, fetch models. Correctness must never depend on
//! timing configuration.

use asc::core::MachineConfig;
use asc::isa::Width;
use asc::kernels::{
    batch, hull, mst, prefix, search, select, sort, stencil, string_match, tracker,
};

fn configs() -> Vec<(String, MachineConfig)> {
    vec![
        ("default-64".into(), MachineConfig::new(64)),
        ("binary-tree".into(), MachineConfig::new(64).with_arity(2)),
        ("wide-tree".into(), MachineConfig::new(64).with_arity(16)),
        ("single-thread".into(), MachineConfig::new(64).single_threaded()),
        ("coarse-grain".into(), MachineConfig::new(64).coarse_grain(4)),
        ("no-forwarding".into(), MachineConfig::new(64).without_forwarding()),
        ("finite-fetch".into(), MachineConfig::new(64).with_fetch_buffers(2)),
        ("w32".into(), MachineConfig::new(64).with_width(Width::W32)),
        ("big-array".into(), MachineConfig::new(256)),
    ]
}

#[test]
fn search_correct_on_every_config() {
    let records: Vec<(i64, i64)> = (0..48).map(|i| ((i * 7) % 12, 100 + i)).collect();
    let expect = search::reference(&records, 5);
    for (name, cfg) in configs() {
        let r = search::run(cfg, &records, 5).unwrap();
        assert_eq!((r.matches, r.first_value, r.first_index), expect, "{name}");
    }
}

#[test]
fn select_correct_on_every_config() {
    let values: Vec<i64> = (0..48).map(|i| ((i * 37) % 101) - 50).collect();
    let (max, argmax, min, argmin) = select::reference(&values);
    for (name, cfg) in configs() {
        let r = select::run(cfg, &values).unwrap();
        assert_eq!((r.max, r.argmax, r.min, r.argmin), (max, argmax, min, argmin), "{name}");
    }
}

#[test]
fn mst_correct_on_every_config() {
    let g = mst::random_graph(24, 60, 3);
    let expect = mst::reference(&g);
    for (name, cfg) in configs() {
        let r = mst::run(cfg, &g).unwrap();
        assert_eq!(r.total_weight, expect, "{name}");
    }
}

#[test]
fn sort_correct_on_every_config() {
    let values: Vec<i64> = (0..40).map(|i| ((i * 53) % 97) - 48).collect();
    let expect = sort::reference(&values);
    for (name, cfg) in configs() {
        let r = sort::run(cfg, &values).unwrap();
        assert_eq!(r.sorted, expect, "{name}");
    }
}

#[test]
fn hull_correct_on_every_config() {
    let points: Vec<(i64, i64)> =
        (0..30).map(|i| (((i * 17) % 41) as i64 - 20, ((i * 29) % 37) as i64 - 18)).collect();
    let expect = hull::reference(&points);
    for (name, cfg) in configs() {
        let r = hull::run(cfg, &points).unwrap();
        assert_eq!(r.on_hull, expect, "{name}");
    }
}

#[test]
fn interconnect_kernels_correct_on_every_config() {
    let values: Vec<i64> = (0..40).map(|i| (i % 9) - 4).collect();
    let scan_expect = prefix::reference(&values);
    let stencil_expect = stencil::reference(&values, 2);
    for (name, cfg) in configs() {
        assert_eq!(prefix::run(cfg, &values).unwrap().sums, scan_expect, "{name}");
        assert_eq!(stencil::run(cfg, &values, 2).unwrap().output, stencil_expect, "{name}");
    }
}

#[test]
fn string_match_correct_on_every_config() {
    let text: Vec<u8> = (0..60).map(|i| b"abcab"[i % 5]).collect();
    let expect = string_match::reference(&text, b"ab");
    for (name, cfg) in configs() {
        let a = string_match::run(cfg, &text, b"ab").unwrap();
        let b = string_match::run_shift(cfg, &text, b"ab").unwrap();
        assert_eq!((a.count, a.first), expect, "{name} windowed");
        assert_eq!((b.count, b.first), expect, "{name} shifted");
    }
}

#[test]
fn batch_correct_on_multithreaded_configs() {
    let keys: Vec<i64> = (0..48).map(|i| (i * 11) % 10).collect();
    let queries: Vec<i64> = (0..24).map(|i| i % 10).collect();
    let expect = batch::reference(&keys, &queries);
    for (name, cfg) in configs() {
        if cfg.threads < 16 {
            continue; // workers need contexts
        }
        let r = batch::run(cfg, &keys, &queries, 4).unwrap();
        assert_eq!(r.counts, expect, "{name}");
    }
}

#[test]
fn tracker_correct_on_every_config() {
    let reports: Vec<(i64, i64)> =
        (0..24).map(|i| ((i * 11) % 101 - 50, (i * 17) % 99 - 49)).collect();
    let (tref, dref) = tracker::reference(&reports, 64);
    for (name, cfg) in configs() {
        let r = tracker::run(cfg, &reports).unwrap();
        assert_eq!(r.tracks.len(), cfg.num_pes, "{name}");
        assert_eq!(&r.tracks[..64.min(cfg.num_pes)], &tref[..64.min(cfg.num_pes)], "{name}");
        assert_eq!(r.dropped, dref, "{name}");
    }
}

#[test]
fn timing_configs_change_cycles_not_results() {
    // the same MST on two very different timing configurations: results
    // equal, cycle counts very different
    let g = mst::random_graph(32, 60, 9);
    let fast = mst::run(MachineConfig::new(64), &g).unwrap();
    let slow =
        mst::run(MachineConfig::new(64).without_forwarding().single_threaded().with_arity(2), &g)
            .unwrap();
    assert_eq!(fast.total_weight, slow.total_weight);
    assert!(slow.stats.cycles > fast.stats.cycles);
}
