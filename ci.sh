#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from the repo root; everything is offline (no registry access).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> mtasc lint (deny warnings: examples + kernel corpus)"
# The committed corpus must stay lint-clean; see docs/static-analysis.md.
for prog in examples/programs/*; do
    ./target/release/mtasc lint "$prog" --deny warnings
done
./target/release/mtasc lint --kernels --deny warnings

echo "==> mtasc stats validate (committed BENCH_*.json schemas)"
./target/release/mtasc stats validate BENCH_*.json

echo "==> mtasc profile + stats diff smoke (sort kernel, fail-on-regress)"
# Profile one kernel (conservation is asserted by the profiler's tests;
# here we check the CLI surface end to end), then diff the profile
# against itself — any regression past 0% would be a determinism bug.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
cat > "$SMOKE_DIR/smoke.asc" <<'ASC'
        li    s2, 5
        li    s3, 0
        pidx  p1
loop:   paddi p1, p1, 1
        rsum  s1, p1
        add   s4, s4, s1
        addi  s3, s3, 1
        ceq   f1, s3, s2
        bf    f1, loop
        halt
ASC
./target/release/mtasc profile "$SMOKE_DIR/smoke.asc" --json "$SMOKE_DIR/a.json" \
    | grep -q "conservation: exact"
./target/release/mtasc profile "$SMOKE_DIR/smoke.asc" --json "$SMOKE_DIR/b.json" > /dev/null
./target/release/mtasc stats validate "$SMOKE_DIR/a.json"
./target/release/mtasc stats diff "$SMOKE_DIR/a.json" "$SMOKE_DIR/b.json" --fail-on-regress 0

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo test --features proptest (property tests)"
cargo test -p asc-core -p asc-asm -p asc-pe --features proptest -q

echo "==> cargo bench --no-run (benches compile)"
cargo bench --workspace --no-run

echo "==> kernel bench smoke-compare (quick mode, vs BENCH_kernels.json)"
# Best-of-2 wall times against the committed baseline; fails on any kernel
# more than MTASC_BENCH_TOLERANCE percent slower (default 25). Regenerate
# the baseline with: cargo bench -p asc-bench --bench kernels -- --save-baseline
MTASC_BENCH_RUNS="${MTASC_BENCH_RUNS:-2}" \
    cargo bench -p asc-bench --bench kernels -- --compare-baseline

echo "==> ci.sh: all green"
