#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from the repo root; everything is offline (no registry access).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> mtasc lint (deny warnings: examples + kernel corpus)"
# The committed corpus must stay lint-clean; see docs/static-analysis.md.
for prog in examples/programs/*; do
    ./target/release/mtasc lint "$prog" --deny warnings
done
./target/release/mtasc lint --kernels --deny warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo test --features proptest (property tests)"
cargo test -p asc-core -p asc-asm -p asc-pe --features proptest -q

echo "==> cargo bench --no-run (benches compile)"
cargo bench --workspace --no-run

echo "==> kernel bench smoke-compare (quick mode, vs BENCH_kernels.json)"
# Best-of-2 wall times against the committed baseline; fails on any kernel
# more than MTASC_BENCH_TOLERANCE percent slower (default 25). Regenerate
# the baseline with: cargo bench -p asc-bench --bench kernels -- --save-baseline
MTASC_BENCH_RUNS="${MTASC_BENCH_RUNS:-2}" \
    cargo bench -p asc-bench --bench kernels -- --compare-baseline

echo "==> ci.sh: all green"
