#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from the repo root; everything is offline (no registry access).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> dependency policy (zero external crates)"
# Every resolved dependency must live in this tree (path deps only):
# the workspace builds with no crates.io access, and `mtasc serve` in
# particular is hand-rolled on std. Any line without an in-tree path
# is a smuggled external crate.
EXTERNAL="$(cargo tree --workspace -e normal --prefix none | grep -v '^$' | grep -v ' (/' || true)"
if [ -n "$EXTERNAL" ]; then
    echo "non-path dependencies detected:"
    echo "$EXTERNAL"
    exit 1
fi

echo "==> mtasc lint (deny warnings: examples + kernel corpus)"
# The committed corpus must stay lint-clean; see docs/static-analysis.md.
for prog in examples/programs/*; do
    ./target/release/mtasc lint "$prog" --deny warnings
done
./target/release/mtasc lint --kernels --deny warnings

echo "==> inter-thread race gate (E6001 divergence + corpus schedule invariance)"
# The family-6 severity contract enforced by execution: every
# error-flagged race fixture must reach divergent architectural state
# under perturbed legal schedules, and the kernel corpus must stay
# race-clean *and* bit-identical across >=8 scheduler seeds — under the
# default geometry, forced multi-segment execution, and the scalar
# dispatch tier. See docs/static-analysis.md ("Inter-thread analysis").
cargo test --test race_differential -q
MTASC_SEGMENTS=4 cargo test --test race_differential -q
MTASC_SEGMENTS=4 MTASC_NO_SIMD=1 cargo test --test race_differential -q

echo "==> mtasc stats validate (committed BENCH_*.json schemas)"
./target/release/mtasc stats validate BENCH_*.json baselines/*.json

echo "==> SIMD speedup gates (committed baselines/ pre-SIMD vs BENCH_*.json)"
# The pre_simd files are the kernel corpus and pe-scaling sweep measured
# at the commit before the compiled-kernel/SIMD work, on the same machine
# and with the same median-of-N harness as the current files. `stats diff`
# lowers both tables into metric registries (kernel.<name>.wall_ms etc.),
# so any committed slowdown trips the regression gate, and the awk checks
# prove the headline speedups: corpus geomean >= 1.5x, sort and search
# each >= 1.3x at 4096 PEs.
./target/release/mtasc stats diff baselines/BENCH_kernels.pre_simd.json BENCH_kernels.json \
    --fail-on-regress 0
./target/release/mtasc stats diff baselines/BENCH_kernels.pre_simd.json BENCH_kernels.json --all \
    | awk '
        $1 == "geomean.wall_ms"       { if ($2 / $4 < 1.5) { print "geomean speedup < 1.5x:", $2, "->", $4; bad = 1 } }
        $1 == "kernel.sort.wall_ms"   { if ($2 / $4 < 1.3) { print "sort speedup < 1.3x:",   $2, "->", $4; bad = 1 } }
        $1 == "kernel.search.wall_ms" { if ($2 / $4 < 1.3) { print "search speedup < 1.3x:", $2, "->", $4; bad = 1 } }
        END { exit bad }'
# pe-scaling: no committed point may be slower; sweep sizes new in this
# PR (2^17, 2^18) are new information, not regressions
./target/release/mtasc stats diff baselines/BENCH_pe_scaling.pre_simd.json BENCH_pe_scaling.json \
    --fail-on-regress 0 > /dev/null

echo "==> scale-out gates (committed pe-scaling sweep: segmentation wins)"
# The pre_scaleout file is the sweep measured at the commit before the
# core-affine segmentation work. The diff proves the committed 2^18-2^20
# points regressed nowhere, and the awk pass proves that at every point
# from 2^16 up — including the 2^20 point this PR adds — the default
# multi-segment execution beats the forced monolithic build
# (wall_seconds < wall_seconds_1seg), from the committed report alone.
./target/release/mtasc stats diff baselines/BENCH_pe_scaling.pre_scaleout.json BENCH_pe_scaling.json \
    --fail-on-regress 0 > /dev/null
awk '
    function num(key,    s) {
        if (match($0, "\"" key "\": *[0-9.eE+-]+")) {
            s = substr($0, RSTART, RLENGTH); sub(/.*: */, "", s); return s + 0
        }
        return -1
    }
    /"num_pes"/ {
        n = num("num_pes"); w = num("wall_seconds"); w1 = num("wall_seconds_1seg")
        if (n >= 262144) top++
        if (n >= 65536 && w >= w1) {
            printf "no multi-segment win at %d PEs: %g >= %g\n", n, w, w1; bad = 1
        }
    }
    END {
        if (top < 3) { print "2^18-2^20 sweep points missing"; bad = 1 }
        exit bad
    }' BENCH_pe_scaling.json

echo "==> mtasc profile + stats diff smoke (sort kernel, fail-on-regress)"
# Profile one kernel (conservation is asserted by the profiler's tests;
# here we check the CLI surface end to end), then diff the profile
# against itself — any regression past 0% would be a determinism bug.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
cat > "$SMOKE_DIR/smoke.asc" <<'ASC'
        li    s2, 5
        li    s3, 0
        pidx  p1
loop:   paddi p1, p1, 1
        rsum  s1, p1
        add   s4, s4, s1
        addi  s3, s3, 1
        ceq   f1, s3, s2
        bf    f1, loop
        halt
ASC
./target/release/mtasc profile "$SMOKE_DIR/smoke.asc" --json "$SMOKE_DIR/a.json" --no-record \
    | grep -q "conservation: exact"
./target/release/mtasc profile "$SMOKE_DIR/smoke.asc" --json "$SMOKE_DIR/b.json" --no-record \
    > /dev/null
./target/release/mtasc stats validate "$SMOKE_DIR/a.json"
./target/release/mtasc stats diff "$SMOKE_DIR/a.json" "$SMOKE_DIR/b.json" --fail-on-regress 0
# stdin (`-`) on one side feeds the same diff engine
./target/release/mtasc stats diff - "$SMOKE_DIR/b.json" --fail-on-regress 0 \
    < "$SMOKE_DIR/a.json" > /dev/null

echo "==> mtasc runs (registry end to end: record, list, show, diff, gc, export)"
RUNS_DIR="$SMOKE_DIR/runs"
MTASC="./target/release/mtasc"
# two recorded runs: a baseline and a deliberately slower one (forwarding
# off) so the registry diff has a real regression to catch
"$MTASC" run "$SMOKE_DIR/smoke.asc" --runs-dir "$RUNS_DIR" --progress-every 2 \
    2> "$SMOKE_DIR/heartbeats.jsonl" | grep -q "recorded run "
grep -q '"schema":"mtasc.progress.v1"' "$SMOKE_DIR/heartbeats.jsonl"
"$MTASC" run "$SMOKE_DIR/smoke.asc" --no-forwarding --runs-dir "$RUNS_DIR" > /dev/null
FAST_ID="$("$MTASC" runs list --runs-dir "$RUNS_DIR" --limit 1 --offset 1 \
    | sed -n '2p' | cut -d' ' -f1)"
SLOW_ID="$("$MTASC" runs list --runs-dir "$RUNS_DIR" --limit 1 \
    | sed -n '2p' | cut -d' ' -f1)"
# list paginates: one row per page, two runs total
test "$("$MTASC" runs list --runs-dir "$RUNS_DIR" | wc -l)" -ge 3
test "$FAST_ID" != "$SLOW_ID"
"$MTASC" runs show "$FAST_ID" --runs-dir "$RUNS_DIR" | grep -q "status   ok"
# recorded artifacts and manifests satisfy their schemas — including a
# lint report captured as a registry-style artifact (mtasc.lint.v1)
"$MTASC" lint "$SMOKE_DIR/smoke.asc" --json > "$RUNS_DIR/$FAST_ID/lint.json"
"$MTASC" stats validate "$RUNS_DIR/$FAST_ID/report.json" "$RUNS_DIR/$FAST_ID/run_meta.json" \
    "$RUNS_DIR/$FAST_ID/lint.json"
# the injected regression must trip the gate (exit 1, and only 1)
set +e
"$MTASC" runs diff "$FAST_ID" "$SLOW_ID" --fail-on-regress 0 --runs-dir "$RUNS_DIR" > /dev/null 2>&1
DIFF_EXIT=$?
set -e
test "$DIFF_EXIT" -eq 1
# heartbeats recorded into the registry replay through runs watch
"$MTASC" runs watch "$FAST_ID" --no-follow --runs-dir "$RUNS_DIR" | grep -q "cycle"
# prometheus export sees both runs
"$MTASC" runs export --prometheus --runs-dir "$RUNS_DIR" \
    | grep -q 'mtasc_runs_total{status="ok"} 2'
# gc keeps the newest run and prunes the other
"$MTASC" runs gc --keep 1 --runs-dir "$RUNS_DIR" | grep -q "pruned 1"
"$MTASC" runs list --runs-dir "$RUNS_DIR" | grep -q "$SLOW_ID"
! "$MTASC" runs list --runs-dir "$RUNS_DIR" | grep -q "$FAST_ID"

echo "==> mtasc serve (HTTP observability daemon end to end)"
SERVE_RUNS="$SMOKE_DIR/serve-runs"
# two recorded runs: the first with a tight heartbeat cadence (so the SSE
# replay below yields several events), the second with forwarding off (so
# the diff endpoint has a real regression to report)
"$MTASC" run "$SMOKE_DIR/smoke.asc" --runs-dir "$SERVE_RUNS" --progress-every 2 \
    > /dev/null 2> /dev/null
"$MTASC" run "$SMOKE_DIR/smoke.asc" --no-forwarding --runs-dir "$SERVE_RUNS" > /dev/null
BASE_ID="$("$MTASC" runs list --runs-dir "$SERVE_RUNS" --limit 1 --offset 1 \
    | sed -n '2p' | cut -d' ' -f1)"
NOFWD_ID="$("$MTASC" runs list --runs-dir "$SERVE_RUNS" --limit 1 \
    | sed -n '2p' | cut -d' ' -f1)"
"$MTASC" serve --addr 127.0.0.1:0 --runs-dir "$SERVE_RUNS" > "$SMOKE_DIR/serve.log" &
SERVE_PID=$!
for _ in $(seq 1 50); do
    if grep -q "listening on" "$SMOKE_DIR/serve.log" 2>/dev/null; then break; fi
    sleep 0.1
done
PORT="$(sed -n 's|.*http://127\.0\.0\.1:\([0-9]*\).*|\1|p' "$SMOKE_DIR/serve.log")"
test -n "$PORT"
# tiny std-only HTTP client on bash's /dev/tcp: prints the decoded body
http_get() {
    exec 3<>"/dev/tcp/127.0.0.1/$PORT"
    printf 'GET %s HTTP/1.1\r\nHost: ci\r\nConnection: close\r\n\r\n' "$1" >&3
    tr -d '\r' <&3 | sed '1,/^$/d'
    exec 3<&- 3>&-
}
# listing parity: the API document is byte-for-byte `runs list --json`,
# and it satisfies `stats validate` as a run listing
http_get /api/v1/runs > "$SMOKE_DIR/api_runs.json"
"$MTASC" runs list --json --runs-dir "$SERVE_RUNS" | diff - "$SMOKE_DIR/api_runs.json"
"$MTASC" stats validate "$SMOKE_DIR/api_runs.json" | grep -q "mtasc.run_meta.v1 list"
http_get /healthz | grep -q '"status":"ok"'
http_get "/api/v1/runs/$BASE_ID" | grep -q "\"id\": \"$BASE_ID\""
http_get "/api/v1/runs/$BASE_ID/report" | grep -q '"schema": "mtasc.run_report.v1"'
# the forwarding-off run regresses against the baseline, and the diff
# endpoint says so in mtasc.stats_diff.v1 terms
http_get "/api/v1/runs/$BASE_ID/diff/$NOFWD_ID?fail-on-regress=0" > "$SMOKE_DIR/diff.json"
grep -q '"schema": "mtasc.stats_diff.v1"' "$SMOKE_DIR/diff.json"
grep -q '"regressed": true' "$SMOKE_DIR/diff.json"
# SSE replay of the recorded heartbeats: >=2 progress events, clean end
http_get "/api/v1/runs/$BASE_ID/progress" > "$SMOKE_DIR/sse.log"
test "$(grep -c '^event: progress' "$SMOKE_DIR/sse.log")" -ge 2
grep -q '^event: end' "$SMOKE_DIR/sse.log"
# prometheus: registry totals plus the server's own request metrics
http_get /metrics > "$SMOKE_DIR/metrics.txt"
grep -q 'mtasc_runs_total{status="ok"} 2' "$SMOKE_DIR/metrics.txt"
grep -q 'mtasc_http_requests_total{route="/api/v1/runs",status="200"}' "$SMOKE_DIR/metrics.txt"
grep -q 'mtasc_http_request_duration_ms_count' "$SMOKE_DIR/metrics.txt"
# clean SIGTERM shutdown: exit 0 and the stopped line on stdout
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
grep -q "mtasc serve stopped" "$SMOKE_DIR/serve.log"

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo test --features proptest (property tests)"
cargo test -p asc-core -p asc-asm -p asc-pe -p asc-obs-store --features proptest -q

echo "==> fusion differential suite at the scalar dispatch tier"
# The proptest fusion suite runs once at the detected SIMD tier (above)
# and once with dispatch forced scalar, so fused-vs-unfused bit-identity
# is proven on both sides of the runtime CPU dispatch.
MTASC_NO_SIMD=1 cargo test -p asc-core --features proptest -q fusion

echo "==> fusion + SIMD differential suites under forced multi-segment execution"
# MTASC_SEGMENTS=4 shards every machine in the suites into four
# core-affine segments, so fused-vs-unfused and SIMD-vs-scalar
# bit-identity — and the sharded-vs-monolithic proptest itself — are
# proven on the two-level reduction path, not just the monolithic one.
MTASC_SEGMENTS=4 cargo test -p asc-core --features proptest -q fusion
MTASC_SEGMENTS=4 cargo test -p asc-core --features proptest -q proptests
MTASC_SEGMENTS=4 MTASC_NO_SIMD=1 cargo test -p asc-core --features proptest -q fusion

echo "==> sparse 2^20-PE construction budget"
# Lazily-materialized planes: a million-PE machine must construct in
# microseconds (budget 500ms for slow CI hosts) with zero bytes
# committed until the first write. Run in release so the budget
# measures the allocator, not debug-mode overhead.
cargo test --release -p asc-pe -q sparse_million_pe_array_constructs_cheaply

echo "==> portability check (intrinsics compiled out)"
# --cfg mtasc_force_scalar removes the x86 intrinsics at compile time;
# the PE crate must still build cleanly (the non-x86 fallback path).
RUSTFLAGS="--cfg mtasc_force_scalar" cargo check -p asc-pe -q

if [ "${MTASC_TSAN:-0}" = "1" ]; then
    echo "==> ThreadSanitizer smoke (opt-in: MTASC_TSAN=1, needs nightly)"
    # The rayon reduction path in asc-pe is the one place real OS threads
    # share memory; run its tests under TSan with the parallel threshold
    # forced low so the parallel path actually executes. Opt-in because
    # -Zsanitizer=thread needs a nightly toolchain and -Zbuild-std.
    RUSTFLAGS="-Zsanitizer=thread" MTASC_PAR_THRESHOLD=1 \
        cargo +nightly test -p asc-pe -Zbuild-std \
        --target "$(rustc -vV | sed -n 's/^host: //p')" -q
fi

echo "==> cargo bench --no-run (benches compile)"
cargo bench --workspace --no-run

echo "==> kernel bench smoke-compare (quick mode, vs BENCH_kernels.json)"
# Median-of-5 wall times against the committed baseline; fails on any
# kernel more than MTASC_BENCH_TOLERANCE percent slower (default here
# 150). This is a catastrophic-regression smoke guard, not the precision
# gate — the committed numbers are medians from a quiet machine, and the
# sub-ms kernels measured right after the full test suite has saturated
# the host can swing 2-3x on loaded single-core CI runners; the
# deterministic perf gates are the committed-file `stats diff` checks
# above. Regenerate the baseline with:
# cargo bench -p asc-bench --bench kernels -- --save-baseline
MTASC_BENCH_RUNS="${MTASC_BENCH_RUNS:-5}" MTASC_BENCH_TOLERANCE="${MTASC_BENCH_TOLERANCE:-150}" \
    cargo bench -p asc-bench --bench kernels -- --compare-baseline

echo "==> kernel bench smoke-compare at the scalar dispatch tier"
# Same corpus with SIMD dispatch forced off: proves the scalar tier runs
# the full suite end to end. The committed baseline was measured at the
# detected tier, so the tolerance only guards against catastrophic
# scalar-path regressions, not the expected SIMD-vs-scalar gap.
MTASC_NO_SIMD=1 MTASC_BENCH_RUNS=5 MTASC_BENCH_TOLERANCE=400 \
    cargo bench -p asc-bench --bench kernels -- --compare-baseline

echo "==> ci.sh: all green"
